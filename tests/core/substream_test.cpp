// substream_test.cpp — StreamEngine over the substream fabric: the
// StreamRef-addressed entry point, O(1) checkpoints, and the byte-exactness
// laws the redesign promises (ISSUE 9):
//
//   (a) a StreamRef's bytes are identical across worker counts, NUMA node
//       counts, host vs gpusim, and the deprecated v1 call forms;
//   (b) a checkpoint minted at ANY offset resumes byte-exactly in a fresh
//       engine (the in-process version of kill -9 + restart: serialize,
//       drop every live object, parse, resume);
//   (c) a tenant's shards are rebuildable in isolation, on engines with
//       different worker counts, and reconstruct the same bytes.
//
// The all-algorithm round trip below is the checkpoint analogue of
// stream_engine_test's determinism sweep: every registered generator, all
// three partition kinds, unaligned offsets.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/multi_device.hpp"
#include "core/registry.hpp"
#include "core/stream_engine.hpp"
#include "stream/checkpoint.hpp"
#include "stream/stream_ref.hpp"

namespace co = bsrng::core;
namespace st = bsrng::stream;

namespace {

constexpr std::uint64_t kRoot = 0xB5126'2025ull;
constexpr st::StreamRef kRef{2, 1, 3};  // a deep, non-root node

// Canonical bytes of a substream: the direct single-generator fill at the
// derived seed.  Everything in this file must reproduce (slices of) this.
std::vector<std::uint8_t> reference_bytes(const std::string& algo,
                                          std::uint64_t root,
                                          st::StreamRef ref, std::size_t n) {
  std::vector<std::uint8_t> out(n);
  co::make_generator(algo, ref.derive_seed(root))->fill(out);
  return out;
}

std::vector<std::string> all_names() {
  std::vector<std::string> names;
  for (const auto& a : co::list_algorithms()) names.push_back(a.name);
  return names;
}

class SubstreamCheckpoint : public ::testing::TestWithParam<std::string> {};

}  // namespace

TEST_P(SubstreamCheckpoint, SerializeKillRestoreIsByteExact) {
  // checkpoint → wire blob → (engine destroyed) → parse → resume in a brand
  // new engine; the resumed bytes must be the reference tail.  Offsets are
  // deliberately unaligned to every block (16/64) and row size.
  const std::string name = GetParam();
  const std::size_t kTail = 4096;
  const std::uint64_t kOffsets[] = {0, 1, 63, 4097};
  const std::size_t kMax = 4097 + kTail;
  const std::vector<std::uint8_t> reference =
      reference_bytes(name, kRoot, kRef, kMax);

  for (const std::uint64_t offset : kOffsets) {
    std::vector<std::uint8_t> blob;
    {
      co::StreamEngine engine({.workers = 3, .chunk_bytes = 1u << 10});
      const st::StreamCheckpoint ck =
          engine.checkpoint({name, kRoot, kRef, offset});
      EXPECT_EQ(ck.algorithm, name);
      EXPECT_EQ(ck.seed, kRoot);
      EXPECT_EQ(ck.offset, offset);
      blob = st::serialize_checkpoint(ck);
    }  // engine gone — nothing survives but the blob, as after kill -9

    const auto back = st::parse_checkpoint(blob);
    ASSERT_TRUE(back.has_value()) << name;
    co::StreamEngine fresh({.workers = 2, .chunk_bytes = 1u << 11});
    std::vector<std::uint8_t> out(kTail, 0xAA);
    const auto rep = fresh.resume(*back, out);
    EXPECT_EQ(rep.bytes, kTail);
    ASSERT_TRUE(std::equal(
        out.begin(), out.end(),
        reference.begin() + static_cast<std::ptrdiff_t>(offset)))
        << name << " resume diverges at offset " << offset;
  }
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, SubstreamCheckpoint,
                         ::testing::ValuesIn(all_names()),
                         [](const auto& pinfo) {
                           std::string s = pinfo.param;
                           for (char& c : s)
                             if (c == '-') c = '_';
                           return s;
                         });

TEST(Substream, BytesInvariantAcrossWorkerAndNumaCounts) {
  // Law (a), host side: the same StreamRef produces the same bytes whatever
  // the pool geometry.  One representative per partition kind.
  const std::size_t n = 32768 - 5;
  for (const char* name : {"aes-ctr-bs64", "mickey-bs32", "mt19937"}) {
    const std::vector<std::uint8_t> reference =
        reference_bytes(name, kRoot, kRef, n);
    for (const std::size_t workers : {1u, 2u, 4u}) {
      for (const std::size_t numa : {0u, 1u, 4u}) {
        co::StreamEngine engine({.workers = workers,
                                 .chunk_bytes = 1u << 12,
                                 .numa_nodes = numa});
        std::vector<std::uint8_t> out(n, 0x55);
        engine.generate({name, kRoot, kRef, 0}, out);
        ASSERT_EQ(out, reference)
            << name << " workers " << workers << " numa " << numa;
      }
    }
  }
}

TEST(Substream, OffsetAddressingMatchesReferenceTail) {
  // generate({algo, seed, ref, offset}) is tail-equivalent to the derived
  // stream, the StreamRef lift of the generate_at law.
  const std::size_t n = 2048;
  for (const char* name : {"chacha20-bs64", "grain-bs64"}) {
    const std::vector<std::uint8_t> reference =
        reference_bytes(name, kRoot, kRef, 4095 + n);
    for (const std::uint64_t offset : {1u, 64u, 4095u}) {
      co::StreamEngine engine({.workers = 3, .chunk_bytes = 1u << 10});
      std::vector<std::uint8_t> out(n);
      engine.generate({name, kRoot, kRef, offset}, out);
      ASSERT_TRUE(std::equal(
          out.begin(), out.end(),
          reference.begin() + static_cast<std::ptrdiff_t>(offset)))
          << name << " offset " << offset;
    }
  }
}

TEST(Substream, ShardsRebuildInIsolationAcrossGeometries) {
  // Law (c): tenant 7, stream 2 owns shards 0..3.  Build each shard on its
  // own engine — every shard with a DIFFERENT worker count — then verify
  // each against the derived-seed reference.  No shard needed any sibling,
  // and the "cluster" reconstruction (concatenating the shard spans in
  // shard order) is reproducible from the refs alone.
  const std::size_t per_shard = 8192 - 3;
  std::vector<std::vector<std::uint8_t>> cluster;
  for (std::uint64_t shard = 0; shard < 4; ++shard) {
    const st::StreamRef ref{7, 2, shard};
    co::StreamEngine engine(
        {.workers = static_cast<std::size_t>(shard + 1),
         .chunk_bytes = 1u << 11});
    std::vector<std::uint8_t> out(per_shard);
    engine.generate({"trivium-bs64", kRoot, ref, 0}, out);
    EXPECT_EQ(out, reference_bytes("trivium-bs64", kRoot, ref, per_shard))
        << "shard " << shard;
    cluster.push_back(std::move(out));
  }
  // Shards are genuinely distinct substreams.
  EXPECT_NE(cluster[0], cluster[1]);
  EXPECT_NE(cluster[1], cluster[2]);
}

TEST(Substream, GpusimAgreesWithHostForDerivedSeeds) {
  // Law (a), backend side: staging a substream's chunks through gpusim
  // devices produces the same bytes as the host engine — the §5.4
  // reconstruction property holds for derived seeds too.
  const std::size_t n = 16384 + 9;
  for (const char* name : {"aes-ctr-bs64", "mickey-bs64"}) {
    const st::StreamRef ref{3, 0, 1};
    const std::uint64_t derived = ref.derive_seed(kRoot);
    const std::vector<std::uint8_t> reference =
        reference_bytes(name, kRoot, ref, n);

    std::vector<std::uint8_t> sim(n, 0xCC);
    const auto rep = co::multi_device_generate(
        name, derived, 2, sim, co::MultiDeviceOptions{.use_gpusim = true});
    EXPECT_EQ(sim, reference) << name << " gpusim diverges";
    EXPECT_EQ(rep.bytes, n);
  }
}

TEST(Substream, CheckpointChainConcatenatesSeamlessly) {
  // Walk a substream purely through checkpoint/resume hops — mint at the
  // cursor, resume a span, advance — and the concatenation must equal one
  // contiguous read.  This is exactly bsrngd's kCheckpoint/kResume loop.
  const std::string name = "chacha20-bs32";
  const std::size_t total = 24000;
  const std::vector<std::uint8_t> reference =
      reference_bytes(name, kRoot, kRef, total);

  co::StreamEngine engine({.workers = 2, .chunk_bytes = 1u << 10});
  std::vector<std::uint8_t> got;
  std::uint64_t cursor = 0;
  const std::size_t spans[] = {313, 4096, 77, 8191};
  std::size_t si = 0;
  while (got.size() < total) {
    const std::size_t n =
        std::min(spans[si++ % 4], total - got.size());
    const st::StreamCheckpoint ck =
        engine.checkpoint({name, kRoot, kRef, cursor});
    const auto back = st::parse_checkpoint(st::serialize_checkpoint(ck));
    ASSERT_TRUE(back.has_value());
    std::vector<std::uint8_t> out(n);
    engine.resume(*back, out);
    got.insert(got.end(), out.begin(), out.end());
    cursor += n;
  }
  EXPECT_EQ(got, reference);
}

TEST(Substream, CheckpointRejectsUnknownAlgorithms) {
  // A checkpoint that could not resume must not be mintable.
  co::StreamEngine engine({.workers = 1});
  EXPECT_THROW((void)engine.checkpoint({"not-a-generator", 1, {}, 0}),
               std::invalid_argument);
  // And resuming a checkpoint whose algorithm vanished fails loudly too.
  EXPECT_THROW(
      {
        std::vector<std::uint8_t> out(16);
        engine.resume({"not-a-generator", 1, {}, 0}, out);
      },
      std::invalid_argument);
}

// ---------------------------------------------------------------------------
// The deprecated v1 overloads are thin forwarders; their output must be
// bit-identical to the StreamRef forms they forward to.  This is the ONLY
// place the old spellings may still be called.
// ---------------------------------------------------------------------------
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

TEST(SubstreamCompat, DeprecatedWrappersForwardExactly) {
  const std::size_t n = 8192 + 1;
  co::StreamEngine engine({.workers = 3, .chunk_bytes = 1u << 11});
  for (const char* name : {"aes-ctr-bs32", "mickey-bs64", "mt19937"}) {
    std::vector<std::uint8_t> via_new(n), via_old(n);

    engine.generate(co::StreamRequest{name, 11, {}, 0}, via_new);
    engine.generate(name, std::uint64_t{11}, std::span(via_old));
    EXPECT_EQ(via_old, via_new) << name << " generate(algo, seed)";

    engine.generate(co::StreamRequest{name, 11, {}, 777}, via_new);
    engine.generate_at(name, 11, 777, via_old);
    EXPECT_EQ(via_old, via_new) << name << " generate_at(algo, seed, off)";

    const co::PartitionSpec spec = co::partition_spec(name, 11);
    engine.generate(spec, 0, via_new);
    engine.generate(spec, via_old);
    EXPECT_EQ(via_old, via_new) << name << " generate(spec)";

    engine.generate(spec, 313, via_new);
    engine.generate_at(spec, 313, via_old);
    EXPECT_EQ(via_old, via_new) << name << " generate_at(spec, off)";
  }
}

#pragma GCC diagnostic pop
