// Baseline PRNGs: bit-exact pins against the C++ standard library engines,
// published known-answer vectors, and structural properties.
#include <gtest/gtest.h>

#include <random>
#include <set>

#include "baselines/middle_square.hpp"
#include "baselines/minstd.hpp"
#include "baselines/modern.hpp"
#include "baselines/mt19937.hpp"
#include "baselines/philox.hpp"
#include "baselines/xorshift.hpp"

namespace bl = bsrng::baselines;

TEST(Mt19937, MatchesStdMt19937) {
  bl::Mt19937 ours(5489u);
  std::mt19937 theirs(5489u);
  for (int i = 0; i < 10000; ++i) ASSERT_EQ(ours.next(), theirs());
}

TEST(Mt19937, TenThousandthOutputIsTheClassicValue) {
  // The C++ standard (and the original MT paper) pin the 10000th output of
  // the default-seeded engine.
  bl::Mt19937 g(5489u);
  std::uint32_t last = 0;
  for (int i = 0; i < 10000; ++i) last = g.next();
  EXPECT_EQ(last, 4123659995u);
}

TEST(Mt19937, SeedsProduceDifferentStreams) {
  bl::Mt19937 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 3);
}

TEST(Mt19937, FillMatchesNextLittleEndian) {
  bl::Mt19937 a(77), b(77);
  std::vector<std::uint8_t> bytes(13);
  a.fill(bytes);
  const std::uint32_t w0 = b.next(), w1 = b.next(), w2 = b.next(),
                      w3 = b.next();
  EXPECT_EQ(bytes[0], static_cast<std::uint8_t>(w0));
  EXPECT_EQ(bytes[3], static_cast<std::uint8_t>(w0 >> 24));
  EXPECT_EQ(bytes[4], static_cast<std::uint8_t>(w1));
  EXPECT_EQ(bytes[11], static_cast<std::uint8_t>(w2 >> 24));
  EXPECT_EQ(bytes[12], static_cast<std::uint8_t>(w3));
}

TEST(Minstd, MatchesStdMinstdRand) {
  bl::Minstd ours(1);
  std::minstd_rand theirs(1);
  for (int i = 0; i < 10000; ++i) ASSERT_EQ(ours.next(), theirs());
}

TEST(Minstd, TenThousandthOutputIsTheStandardValue) {
  // std::minstd_rand's pinned 10000th value.
  bl::Minstd g(1);
  std::uint32_t last = 0;
  for (int i = 0; i < 10000; ++i) last = g.next();
  EXPECT_EQ(last, 399268537u);
}

TEST(Minstd, ZeroSeedIsCoercedOffTheFixedPoint) {
  bl::Minstd g(0);
  EXPECT_NE(g.next(), 0u);
}

TEST(Xorshift32, FullPeriodOverSample) {
  // xorshift32 is a permutation of nonzero 32-bit values: no value repeats
  // within a short window, and zero never appears.
  bl::Xorshift32 g(1);
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const std::uint32_t v = g.next();
    EXPECT_NE(v, 0u);
    EXPECT_TRUE(seen.insert(v).second) << "value repeated at i=" << i;
  }
}

TEST(Xorshift64, NonzeroAndDeterministic) {
  bl::Xorshift64 a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    const auto v = a.next();
    EXPECT_NE(v, 0u);
    EXPECT_EQ(v, b.next());
  }
}

TEST(Xorshift128, MarsagliaDefaultsAreBalanced) {
  bl::Xorshift128 g;
  int ones = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) ones += std::popcount(g.next());
  const double mean = 16.0 * n;
  EXPECT_NEAR(ones, mean, 5 * std::sqrt(8.0 * n));
}

TEST(Xorwow, DistinctSeedsDiverge) {
  bl::Xorwow a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 3);
}

TEST(Xorwow, WeylSequenceBreaksXorshiftZeroTrap) {
  // Even from the degenerate all-equal state the Weyl counter keeps the
  // output moving.
  bl::Xorwow g(0);
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 100; ++i) seen.insert(g.next());
  EXPECT_GT(seen.size(), 95u);
}

TEST(Philox, BlockIsAPureFunction) {
  const bl::Philox4x32::Counter c{1, 2, 3, 4};
  const bl::Philox4x32::Key k{5, 6};
  EXPECT_EQ(bl::Philox4x32::block(c, k), bl::Philox4x32::block(c, k));
}

TEST(Philox, KnownAnswerZeroKeyZeroCounter) {
  // Random123 known-answers file, philox4x32-10, ctr = 0, key = 0.
  const auto out = bl::Philox4x32::block({0, 0, 0, 0}, {0, 0});
  EXPECT_EQ(out[0], 0x6627e8d5u);
  EXPECT_EQ(out[1], 0xe169c58du);
  EXPECT_EQ(out[2], 0xbc57ac4cu);
  EXPECT_EQ(out[3], 0x9b00dbd8u);
}

TEST(Philox, CounterIncrementsLittleEndianAcrossWords) {
  bl::Philox4x32 g({0, 0}, {0xFFFFFFFFu, 0, 0, 0});
  for (int i = 0; i < 4; ++i) g.next();  // consume block at ctr
  // Next block must be at counter {0, 1, 0, 0}.
  const auto expect = bl::Philox4x32::block({0, 1, 0, 0}, {0, 0});
  EXPECT_EQ(g.next(), expect[0]);
}

TEST(Philox, SetCounterJumpsTheStream) {
  bl::Philox4x32 a({9, 9}, {0, 0, 0, 0});
  for (int i = 0; i < 12; ++i) a.next();  // 3 blocks consumed
  bl::Philox4x32 b({9, 9}, {0, 0, 0, 0});
  b.set_counter({3, 0, 0, 0});
  for (int i = 0; i < 4; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(MiddleSquare, ReproducesVonNeumannDynamics) {
  bl::MiddleSquare a(675248), b(675248);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(a.next(), b.next());
  // The all-zero absorbing state: squaring zero stays zero.
  bl::MiddleSquare z(0);
  EXPECT_EQ(z.next(), 0u);
  EXPECT_EQ(z.next(), 0u);
}

TEST(MiddleSquare, EntersAShortCycleQuickly) {
  // The method's famous failure mode (§2.1): Floyd cycle detection finds a
  // cycle well within 10^6 steps from an arbitrary seed.
  bl::MiddleSquare slow(12345), fast(12345);
  bool cycled = false;
  for (int i = 0; i < 1000000; ++i) {
    const std::uint32_t s = slow.next();
    fast.next();
    const std::uint32_t f = fast.next();
    if (s == f) {
      cycled = true;
      break;
    }
  }
  EXPECT_TRUE(cycled);
}

// --- RC4 / PCG32 / xoshiro256++ ----------------------------------------------

TEST(Rc4, WikipediaTestVectors) {
  // Key "Key" -> keystream EB9F7781B734CA72A719...
  const std::string k1 = "Key";
  bl::Rc4 a({reinterpret_cast<const std::uint8_t*>(k1.data()), k1.size()});
  const std::uint8_t expect1[] = {0xEB, 0x9F, 0x77, 0x81, 0xB7,
                                  0x34, 0xCA, 0x72, 0xA7, 0x19};
  for (const auto e : expect1) EXPECT_EQ(a.next_byte(), e);
  // Key "Wiki" -> keystream 6044DB6D41B7...
  const std::string k2 = "Wiki";
  bl::Rc4 b({reinterpret_cast<const std::uint8_t*>(k2.data()), k2.size()});
  const std::uint8_t expect2[] = {0x60, 0x44, 0xDB, 0x6D, 0x41, 0xB7};
  for (const auto e : expect2) EXPECT_EQ(b.next_byte(), e);
}

TEST(Rc4, RejectsBadKeySizes) {
  const std::span<const std::uint8_t> empty;
  EXPECT_THROW(bl::Rc4 r(empty), std::invalid_argument);
  std::vector<std::uint8_t> big(257, 1);
  EXPECT_THROW(bl::Rc4 r(big), std::invalid_argument);
}

TEST(Pcg32, ReferenceDemoOutputs) {
  // pcg32_srandom(42, 54): the first outputs of the canonical pcg32 demo.
  bl::Pcg32 g(42u, 54u);
  EXPECT_EQ(g.next(), 0xa15c02b7u);
  EXPECT_EQ(g.next(), 0x7b47f409u);
  EXPECT_EQ(g.next(), 0xba1d3330u);
  EXPECT_EQ(g.next(), 0x83d2f293u);
  EXPECT_EQ(g.next(), 0xbfa4784bu);
  EXPECT_EQ(g.next(), 0xcbed606eu);
}

TEST(Pcg32, StreamsAreIndependent) {
  bl::Pcg32 a(1, 1), b(1, 2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 3);
}

TEST(Xoshiro256pp, DeterministicAndBalanced) {
  bl::Xoshiro256pp a(7), b(7);
  long ones = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    const auto v = a.next();
    ASSERT_EQ(v, b.next());
    ones += std::popcount(v);
  }
  EXPECT_NEAR(static_cast<double>(ones), 32.0 * n, 5 * std::sqrt(16.0 * n));
}
