// Stats substrate: special functions against known values, FFT against naive
// DFT, GF(2) rank, and Berlekamp-Massey linear complexity.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <random>

#include "lfsr/polynomial.hpp"
#include "lfsr/scalar_lfsr.hpp"
#include "stats/berlekamp_massey.hpp"
#include "stats/fft.hpp"
#include "stats/gf2matrix.hpp"
#include "stats/special.hpp"

namespace st = bsrng::stats;

TEST(Special, IgamcKnownValues) {
  // Q(a, 0) = 1; Q(a, inf) -> 0.
  EXPECT_DOUBLE_EQ(st::igamc(2.5, 0.0), 1.0);
  EXPECT_NEAR(st::igamc(1.0, 1.0), std::exp(-1.0), 1e-12);   // Q(1,x)=e^-x
  EXPECT_NEAR(st::igamc(1.0, 5.0), std::exp(-5.0), 1e-12);
  // Q(1/2, x) = erfc(sqrt(x)).
  for (double x : {0.25, 1.0, 2.0, 4.0})
    EXPECT_NEAR(st::igamc(0.5, x), std::erfc(std::sqrt(x)), 1e-12) << x;
  // Chi-squared with 2k dof: Q(k, x/2) is the survival function.
  // chi2 sf at its mean is a moderate probability in (0.3, 0.7).
  const double sf = st::igamc(3.0, 3.0);
  EXPECT_GT(sf, 0.3);
  EXPECT_LT(sf, 0.7);
}

TEST(Special, IgamPlusIgamcIsOne) {
  for (double a : {0.3, 1.0, 2.5, 10.0, 100.0})
    for (double x : {0.01, 0.5, 1.0, 3.0, 10.0, 150.0})
      EXPECT_NEAR(st::igam(a, x) + st::igamc(a, x), 1.0, 1e-10)
          << "a=" << a << " x=" << x;
}

TEST(Special, RejectsBadDomain) {
  EXPECT_THROW(st::igamc(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(st::igamc(1.0, -1.0), std::invalid_argument);
}

TEST(Special, NormalCdf) {
  EXPECT_NEAR(st::normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(st::normal_cdf(1.6448536269514722), 0.95, 1e-9);
  EXPECT_NEAR(st::normal_cdf(-1.6448536269514722), 0.05, 1e-9);
}

namespace {
std::vector<st::cplx> naive_dft(const std::vector<st::cplx>& in) {
  const std::size_t n = in.size();
  std::vector<st::cplx> out(n, 0.0);
  for (std::size_t k = 0; k < n; ++k)
    for (std::size_t j = 0; j < n; ++j) {
      const double ang = -2.0 * std::numbers::pi * static_cast<double>(k * j) /
                         static_cast<double>(n);
      out[k] += in[j] * st::cplx(std::cos(ang), std::sin(ang));
    }
  return out;
}
}  // namespace

class DftLengths : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DftLengths, MatchesNaiveDft) {
  const std::size_t n = GetParam();
  std::mt19937_64 rng(n);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  std::vector<st::cplx> in(n);
  for (auto& v : in) v = st::cplx(u(rng), u(rng));
  const auto fast = st::dft(in);
  const auto slow = naive_dft(in);
  ASSERT_EQ(fast.size(), n);
  for (std::size_t k = 0; k < n; ++k)
    EXPECT_NEAR(std::abs(fast[k] - slow[k]), 0.0, 1e-8 * static_cast<double>(n))
        << "k=" << k;
}

INSTANTIATE_TEST_SUITE_P(PowersAndOddLengths, DftLengths,
                         ::testing::Values(1, 2, 8, 64, 100, 127, 128, 1000));

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<st::cplx> v(12, 0.0);
  EXPECT_THROW(st::fft_pow2(v), std::invalid_argument);
}

TEST(Fft, ParsevalHoldsOnLargeInput) {
  const std::size_t n = 1 << 14;
  std::mt19937_64 rng(3);
  std::vector<st::cplx> in(n);
  double time_energy = 0;
  for (auto& v : in) {
    v = st::cplx(rng() & 1 ? 1.0 : -1.0, 0.0);
    time_energy += std::norm(v);
  }
  auto f = in;
  st::fft_pow2(f);
  double freq_energy = 0;
  for (const auto& v : f) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy,
              1e-6 * time_energy);
}

TEST(Gf2Matrix, RankOfIdentityAndSingular) {
  st::Gf2Matrix id(32, 32);
  for (std::size_t i = 0; i < 32; ++i) id.set(i, i, true);
  EXPECT_EQ(id.rank(), 32u);

  st::Gf2Matrix dup(8, 8);
  for (std::size_t c = 0; c < 8; ++c) {
    dup.set(0, c, c % 2);
    dup.set(1, c, c % 2);  // duplicate row
    dup.set(2, c, c % 3 == 0);
  }
  EXPECT_EQ(dup.rank(), 2u);

  st::Gf2Matrix zero(16, 16);
  EXPECT_EQ(zero.rank(), 0u);
}

TEST(Gf2Matrix, RankIsInvariantUnderRowXor) {
  std::mt19937_64 rng(4);
  st::Gf2Matrix m(32, 32);
  for (std::size_t r = 0; r < 32; ++r)
    for (std::size_t c = 0; c < 32; ++c) m.set(r, c, rng() & 1u);
  const std::size_t base = m.rank();
  // XOR row 5 into row 9 — an elementary operation, rank unchanged.
  for (std::size_t c = 0; c < 32; ++c)
    m.set(9, c, m.get(9, c) != m.get(5, c));
  EXPECT_EQ(m.rank(), base);
}

TEST(Gf2Matrix, RankProbabilitiesMatchNistConstants) {
  // NIST SP 800-22 §2.5.4 for 32x32: P(rank=32)≈0.2888, P(31)≈0.5776,
  // P(<=30)≈0.1336.
  EXPECT_NEAR(st::gf2_rank_probability(32, 32, 32), 0.2888, 4e-4);
  EXPECT_NEAR(st::gf2_rank_probability(32, 32, 31), 0.5776, 4e-4);
  double le30 = 0;
  for (std::size_t r = 0; r <= 30; ++r)
    le30 += st::gf2_rank_probability(32, 32, r);
  EXPECT_NEAR(le30, 0.1336, 4e-4);
}

TEST(Gf2Matrix, RankDistributionMatchesTheoryEmpirically) {
  std::mt19937_64 rng(5);
  const int trials = 2000;
  int full = 0;
  for (int t = 0; t < trials; ++t) {
    st::Gf2Matrix m(32, 32);
    for (std::size_t r = 0; r < 32; ++r)
      for (std::size_t cw = 0; cw < 32; ++cw) m.set(r, cw, rng() & 1u);
    full += m.rank() == 32;
  }
  EXPECT_NEAR(full / static_cast<double>(trials), 0.2888, 0.05);
}

TEST(BerlekampMassey, RecoversLfsrComplexity) {
  // A maximal n-bit LFSR stream of length >= 2n has complexity exactly n.
  for (const unsigned n : {8u, 16u, 20u, 24u}) {
    const auto poly = bsrng::lfsr::primitive_polynomial(n);
    bsrng::lfsr::FibonacciLfsr l(poly, 0xACE1u);
    std::vector<std::uint8_t> bits(4 * n);
    for (auto& b : bits) b = l.step();
    EXPECT_EQ(st::berlekamp_massey(bits), n) << "degree " << n;
  }
}

TEST(BerlekampMassey, EdgeCases) {
  EXPECT_EQ(st::berlekamp_massey({}), 0u);
  const std::vector<std::uint8_t> zeros(16, 0);
  EXPECT_EQ(st::berlekamp_massey(zeros), 0u);
  // 0001: complexity = 4 (needs the full register).
  const std::vector<std::uint8_t> impulse = {0, 0, 0, 1};
  EXPECT_EQ(st::berlekamp_massey(impulse), 4u);
  // Alternating 0101...: complexity 2.
  std::vector<std::uint8_t> alt(32);
  for (std::size_t i = 0; i < alt.size(); ++i) alt[i] = i & 1u;
  EXPECT_EQ(st::berlekamp_massey(alt), 2u);
}

TEST(BerlekampMassey, RandomSequenceHasNearFullComplexity) {
  std::mt19937_64 rng(6);
  std::vector<std::uint8_t> bits(512);
  for (auto& b : bits) b = rng() & 1u;
  const auto L = st::berlekamp_massey(bits);
  // Expected complexity of random bits is ~n/2.
  EXPECT_NEAR(static_cast<double>(L), 256.0, 10.0);
}
