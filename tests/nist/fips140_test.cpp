// FIPS 140-2 battery: calibration on good generators, rejection of
// degenerate streams, exact threshold semantics.
#include <gtest/gtest.h>

#include <random>

#include "core/registry.hpp"
#include "nist/fips140.hpp"

namespace ni = bsrng::nist;
using bsrng::bitslice::BitBuf;

namespace {
BitBuf sample_of(const char* algo, std::uint64_t seed) {
  auto gen = bsrng::core::make_generator(algo, seed);
  std::vector<std::uint8_t> bytes(ni::kFips140SampleBits / 8);
  gen->fill(bytes);
  BitBuf b;
  b.append_bytes(bytes);
  return b;
}
}  // namespace

TEST(Fips140, RejectsWrongSampleSize) {
  EXPECT_THROW(ni::fips140_2(BitBuf(19999)), std::invalid_argument);
  EXPECT_THROW(ni::fips140_2(BitBuf(20001)), std::invalid_argument);
}

class Fips140Good : public ::testing::TestWithParam<const char*> {};

TEST_P(Fips140Good, AllSubtestsPass) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const auto r = ni::fips140_2(sample_of(GetParam(), seed));
    EXPECT_TRUE(r.all_passed())
        << GetParam() << " seed " << seed << ": " << r.summary();
  }
}

INSTANTIATE_TEST_SUITE_P(Generators, Fips140Good,
                         ::testing::Values("mickey-bs512", "grain-bs256",
                                           "trivium-bs64", "aes-ctr-bs32",
                                           "chacha20-bs128", "a51-bs32",
                                           "mt19937", "philox", "pcg32",
                                           "xoshiro256pp", "rc4"));

TEST(Fips140, AllZerosFailsEverything) {
  const auto r = ni::fips140_2(BitBuf(ni::kFips140SampleBits));
  EXPECT_FALSE(r.monobit);
  EXPECT_FALSE(r.poker);
  EXPECT_FALSE(r.runs);
  EXPECT_FALSE(r.long_run);
  EXPECT_FALSE(r.all_passed());
  EXPECT_NE(r.summary().find("monobit:FAIL"), std::string::npos);
}

TEST(Fips140, AlternatingFailsPokerAndRuns) {
  BitBuf b;
  for (std::size_t i = 0; i < ni::kFips140SampleBits; ++i) b.push_back(i & 1);
  const auto r = ni::fips140_2(b);
  EXPECT_TRUE(r.monobit);   // perfectly balanced
  EXPECT_TRUE(r.long_run);  // no long runs
  EXPECT_FALSE(r.poker);    // only patterns 0101/1010 occur
  EXPECT_FALSE(r.runs);     // all runs have length 1
}

TEST(Fips140, SingleLongRunTripsOnlyLongRunTest) {
  // A good stream with one 26-bit run spliced in must fail long_run.
  std::mt19937_64 rng(9);
  BitBuf b;
  for (std::size_t i = 0; i < ni::kFips140SampleBits; ++i)
    b.push_back(rng() & 1);
  for (std::size_t i = 5000; i < 5026; ++i) b.set(i, true);
  const auto r = ni::fips140_2(b);
  EXPECT_FALSE(r.long_run);
}

TEST(Fips140, BiasedStreamFailsMonobit) {
  std::mt19937_64 rng(10);
  std::uniform_real_distribution<double> u(0, 1);
  BitBuf b;
  for (std::size_t i = 0; i < ni::kFips140SampleBits; ++i)
    b.push_back(u(rng) < 0.53);
  const auto r = ni::fips140_2(b);
  EXPECT_FALSE(r.monobit);
}
