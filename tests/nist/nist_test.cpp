// NIST SP 800-22 implementation: worked examples from the specification,
// calibration on known-good generators (P-values uniform, tests pass) and
// known-bad inputs (hard failures), plus structural checks.
#include <gtest/gtest.h>

#include <random>

#include "baselines/mt19937.hpp"
#include "nist/suite.hpp"

namespace ni = bsrng::nist;
using bsrng::bitslice::BitBuf;

namespace {
BitBuf from_string(std::string_view s) {
  BitBuf b;
  for (const char c : s) b.push_back(c == '1');
  return b;
}

BitBuf random_bits(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  BitBuf b;
  b.reserve(n);
  for (std::size_t i = 0; i < n; ++i) b.push_back(rng() & 1u);
  return b;
}

BitBuf zeros(std::size_t n) { return BitBuf(n); }

BitBuf alternating(std::size_t n) {
  BitBuf b;
  for (std::size_t i = 0; i < n; ++i) b.push_back(i & 1u);
  return b;
}

BitBuf biased(std::size_t n, double p_one, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> u(0, 1);
  BitBuf b;
  for (std::size_t i = 0; i < n; ++i) b.push_back(u(rng) < p_one);
  return b;
}
}  // namespace

// --- worked examples from SP 800-22 -----------------------------------------

TEST(NistFrequency, SpecWorkedExample) {
  // §2.1.8: eps = 1011010101, P-value = 0.527089.
  const auto r = ni::frequency_test(from_string("1011010101"));
  ASSERT_EQ(r.p_values.size(), 1u);
  EXPECT_NEAR(r.p_values[0], 0.527089, 1e-6);
}

TEST(NistBlockFrequency, SpecWorkedExample) {
  // §2.2.8: eps = 0110011010, M = 3, P-value = 0.801252.
  const auto r = ni::block_frequency_test(from_string("0110011010"), 3);
  ASSERT_EQ(r.p_values.size(), 1u);
  EXPECT_NEAR(r.p_values[0], 0.801252, 1e-6);
}

TEST(NistRuns, SpecWorkedExample) {
  // §2.3.8: eps = 1001101011, P-value = 0.147232.
  const auto r = ni::runs_test(from_string("1001101011"));
  ASSERT_EQ(r.p_values.size(), 1u);
  EXPECT_NEAR(r.p_values[0], 0.147232, 1e-6);
}

// --- calibration: good generators must pass ---------------------------------

class GoodStream : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GoodStream, FastTestsPassOnMtStream) {
  const BitBuf bits = random_bits(1 << 17, GetParam());
  for (const auto& r :
       {ni::frequency_test(bits), ni::block_frequency_test(bits),
        ni::cusum_test(bits), ni::runs_test(bits), ni::longest_run_test(bits),
        ni::rank_test(bits), ni::serial_test(bits),
        ni::approximate_entropy_test(bits),
        ni::overlapping_template_test(bits)}) {
    EXPECT_TRUE(r.passed(0.001)) << r.name << " p="
        << (r.p_values.empty() ? -1.0 : r.p_values[0]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GoodStream, ::testing::Values(1, 2, 3, 4, 5));

TEST(NistSlowTests, PassOnMtStream) {
  const BitBuf bits = random_bits(1 << 17, 42);
  EXPECT_TRUE(ni::spectral_test(bits).passed(0.001));
  EXPECT_TRUE(ni::linear_complexity_test(bits).passed(0.001));
  const BitBuf big = random_bits(1 << 20, 43);
  EXPECT_TRUE(ni::universal_test(big).passed(0.001));
  EXPECT_TRUE(ni::non_overlapping_template_test(bits).passed(0.0001));
}

TEST(NistExcursions, PassOnLongMtStream) {
  const BitBuf bits = random_bits(1 << 20, 44);
  const auto r1 = ni::random_excursions_test(bits);
  const auto r2 = ni::random_excursions_variant_test(bits);
  if (r1.applicable) {
    EXPECT_TRUE(r1.passed(0.001));
  }
  if (r2.applicable) {
    ASSERT_EQ(r2.p_values.size(), 18u);
    EXPECT_TRUE(r2.passed(0.001));
  }
}

// --- calibration: degenerate streams must fail ------------------------------

TEST(NistNegative, AllZerosFailsEverywhere) {
  const BitBuf bits = zeros(1 << 14);
  EXPECT_FALSE(ni::frequency_test(bits).passed());
  EXPECT_FALSE(ni::block_frequency_test(bits).passed());
  EXPECT_FALSE(ni::runs_test(bits).passed());
  EXPECT_FALSE(ni::longest_run_test(bits).passed());
  EXPECT_FALSE(ni::cusum_test(bits).passed());
  EXPECT_FALSE(ni::rank_test(bits).passed());
}

TEST(NistNegative, AlternatingPassesFrequencyButFailsRuns) {
  const BitBuf bits = alternating(1 << 14);
  EXPECT_TRUE(ni::frequency_test(bits).passed());
  EXPECT_FALSE(ni::runs_test(bits).passed());
  EXPECT_FALSE(ni::serial_test(bits).passed());
  EXPECT_FALSE(ni::approximate_entropy_test(bits).passed());
}

TEST(NistNegative, SlightBiasIsCaughtAtScale) {
  // 51% ones: undetectable in 1k bits, flagrant in 128k bits.
  EXPECT_TRUE(ni::frequency_test(biased(1000, 0.51, 9)).passed());
  EXPECT_FALSE(ni::frequency_test(biased(1 << 17, 0.52, 9)).passed());
}

TEST(NistNegative, PeriodicPatternFailsSpectral) {
  // Period-3 pattern has a sharp spectral line.
  BitBuf b;
  for (std::size_t i = 0; i < (1 << 12); ++i) b.push_back(i % 3 == 0);
  EXPECT_FALSE(ni::spectral_test(b).passed());
}

TEST(NistNegative, LowComplexityStreamFailsLinearComplexity) {
  // A short LFSR keystream has complexity ~16 << mu(500).
  BitBuf b;
  std::uint32_t lfsr = 0xACE1;
  for (std::size_t i = 0; i < (1 << 15); ++i) {
    const std::uint32_t bit =
        (lfsr ^ (lfsr >> 2) ^ (lfsr >> 3) ^ (lfsr >> 5)) & 1u;
    lfsr = (lfsr >> 1) | (bit << 15);
    b.push_back(lfsr & 1u);
  }
  EXPECT_FALSE(ni::linear_complexity_test(b).passed());
}

// --- structural -------------------------------------------------------------

TEST(NistTemplates, AperiodicTemplateCountsMatchSpec) {
  // SP 800-22 ships 148 aperiodic templates for m = 9.
  EXPECT_EQ(ni::aperiodic_templates(9).size(), 148u);
  // Small cases, checkable by hand: m=2 -> {01, 10}; m=3 -> {001,011,100,110}.
  EXPECT_EQ(ni::aperiodic_templates(2).size(), 2u);
  EXPECT_EQ(ni::aperiodic_templates(3).size(), 4u);
}

TEST(NistTemplates, AperiodicityDefinition) {
  for (const auto t : ni::aperiodic_templates(5)) {
    for (std::size_t k = 1; k < 5; ++k) {
      bool overlap = true;
      for (std::size_t i = 0; i + k < 5; ++i)
        if (((t >> (i + k)) & 1u) != ((t >> i) & 1u)) overlap = false;
      EXPECT_FALSE(overlap) << "template " << t << " shift " << k;
    }
  }
}

TEST(NistResult, PassedSemantics) {
  ni::TestResult r{"X", {0.5, 0.02}};
  EXPECT_TRUE(r.passed(0.01));
  EXPECT_FALSE(r.passed(0.05));
  ni::TestResult empty{"Y", {}};
  EXPECT_FALSE(empty.passed());
  ni::TestResult na{"Z", {}, false};
  EXPECT_TRUE(na.passed());
}

TEST(NistSuite, MinPassProportionMatchesNistFormula) {
  // For 1000 streams at alpha = 0.01 NIST quotes ~0.9806.
  EXPECT_NEAR(ni::min_pass_proportion(1000), 0.98056, 1e-4);
  EXPECT_NEAR(ni::min_pass_proportion(100), 0.96015, 1e-4);
}

TEST(NistSuite, EndToEndSmallRunOnGoodGenerator) {
  bsrng::baselines::Mt19937 gen(2024);
  ni::SuiteConfig cfg;
  cfg.stream_bits = 1 << 14;
  cfg.num_streams = 20;
  cfg.run_slow_tests = false;
  const auto rows = ni::run_suite(
      [&](std::span<std::uint8_t> out) { gen.fill(out); }, cfg);
  ASSERT_FALSE(rows.empty());
  for (const auto& r : rows) {
    EXPECT_TRUE(r.success) << r.name << " proportion=" << r.proportion;
    if (r.streams > 0) {
      EXPECT_GT(r.mean_p, 0.1) << r.name;
    }
  }
  const auto table = ni::format_table3(rows);
  EXPECT_NE(table.find("Frequency"), std::string::npos);
  EXPECT_NE(table.find("Success"), std::string::npos);
}

TEST(NistSuite, EndToEndFlagsBiasedGenerator) {
  std::mt19937_64 rng(1);
  std::uniform_real_distribution<double> u(0, 1);
  ni::SuiteConfig cfg;
  cfg.stream_bits = 1 << 14;
  cfg.num_streams = 10;
  cfg.run_slow_tests = false;
  const auto rows = ni::run_suite(
      [&](std::span<std::uint8_t> out) {
        for (auto& byte : out) {
          byte = 0;
          for (int k = 0; k < 8; ++k)
            byte |= static_cast<std::uint8_t>((u(rng) < 0.54) << k);
        }
      },
      cfg);
  bool any_failure = false;
  for (const auto& r : rows) any_failure |= !r.success;
  EXPECT_TRUE(any_failure);
}
