// chaos_test.cpp — the end-to-end failure-weather property.
//
// Pinned fault seed, every injection point armed (client short writes and
// resets, server short reads/writes, resets, dropped accepts, pool worker
// throws and stalls, engine allocation failures), the server KILLED and
// RESTARTED twice mid-run — and still, every byte a ResilientClient
// delivers for all six cipher families equals the host oracle, because
// every span names an absolute (algorithm, seed, offset) and generate_at
// is positional.  References are computed BEFORE arming (the oracle shares
// this process); a global steady-clock deadline turns a hang into a loud
// failure rather than a wedged ctest.
//
// The TSan/sanitizer CI legs shrink the geometry via BSRNG_NET_CHAOS_CONNS
// / BSRNG_NET_CHAOS_REQS; the chaos CI job runs the full 64-connection
// version through the bsrngd + bsrng_loadgen binaries on top of this.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <span>
#include <string>
#include <system_error>
#include <thread>
#include <vector>

#include "core/registry.hpp"
#include "core/stream_engine.hpp"
#include "fault/fault.hpp"
#include "net/resilient_client.hpp"
#include "net/server.hpp"
#include "net/session.hpp"

namespace co = bsrng::core;
namespace fa = bsrng::fault;
namespace nt = bsrng::net;

namespace {

constexpr std::uint64_t kChaosSeed = 0xC7A05ull;

std::size_t env_or(const char* name, std::size_t fallback) {
  if (const char* env = std::getenv(name)) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return fallback;
}

std::unique_ptr<nt::Server> start_on_port(std::uint16_t port,
                                          nt::ServerConfig config) {
  config.port = port;
  for (int attempt = 0; attempt < 200; ++attempt) {
    auto server = std::make_unique<nt::Server>(config);
    try {
      server->start();
      return server;
    } catch (const std::system_error&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  return nullptr;
}

class ChaosTest : public ::testing::Test {
 protected:
  void TearDown() override { fa::faults().clear(); }
};

}  // namespace

TEST_F(ChaosTest, ByteExactUnderFullFaultScheduleAndServerRestarts) {
  const std::size_t kConns = env_or("BSRNG_NET_CHAOS_CONNS", 64);
  const std::size_t kReqs = env_or("BSRNG_NET_CHAOS_REQS", 8);
  const std::size_t kSpans[] = {512, 4096, 1024, 24576, 256};
  const char* const kAlgos[] = {"mickey-bs64",  "grain-bs64",
                                "trivium-bs64", "aes-ctr-bs64",
                                "a51-bs64",     "chacha20-bs64"};
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::seconds(static_cast<long>(env_or("BSRNG_NET_CHAOS_SECS",
                                                    120)));

  // 1. References first, while the process is fault-free.
  std::vector<std::vector<std::uint8_t>> expected(kConns);
  std::vector<std::vector<std::uint64_t>> offs(kConns);
  for (std::size_t i = 0; i < kConns; ++i) {
    std::uint64_t total = 0;
    for (std::size_t r = 0; r < kReqs; ++r) {
      offs[i].push_back(total);
      total += kSpans[(i + r) % std::size(kSpans)];
    }
    offs[i].push_back(total);
    expected[i].resize(total);
    co::make_generator(kAlgos[i % std::size(kAlgos)], 5000 + i)
        ->fill(expected[i]);
  }

  // 2. Arm the full schedule at the pinned seed.  Rates are per-point so a
  // high-frequency point (every recv) does not drown the run while a rare
  // one (accept) still fires.
  fa::FaultRegistry& faults = fa::faults();
  faults.arm(kChaosSeed, 0.0);
  faults.arm_point("net.client.write_short", 0.02);
  faults.arm_point("net.client.read_reset", 0.01);
  faults.arm_point("net.server.read_short", 0.05);
  faults.arm_point("net.server.read_reset", 0.005);
  faults.arm_point("net.server.write_short", 0.05);
  faults.arm_point("net.server.write_reset", 0.005);
  faults.arm_point("net.server.accept_fail", 0.05);
  faults.arm_point("pool.task_throw", 0.01);
  faults.arm_point("pool.task_stall", 0.01);
  faults.arm_point("engine.alloc_fail", 0.01);

  nt::ServerConfig server_config{.workers = 2,
                                 .poll_timeout_ms = 20,
                                 .idle_timeout_ms = 30000,
                                 .partial_frame_timeout_ms = 15000,
                                 .shed_queue_bytes = 1u << 20,
                                 .retry_after_ms = 5};
  auto server = std::make_unique<nt::Server>(server_config);
  server->start();
  const std::uint16_t port = server->port();

  // 3. The fleet: one ResilientClient per connection, sequential spans.
  struct Result {
    std::size_t done = 0;
    std::uint64_t mismatches = 0;
    std::string error;
  };
  std::vector<Result> results(kConns);
  std::atomic<std::uint64_t> total_retries{0};
  std::atomic<std::uint64_t> total_reconnects{0};
  std::vector<std::thread> fleet;
  fleet.reserve(kConns);
  for (std::size_t i = 0; i < kConns; ++i) {
    fleet.emplace_back([&, i] {
      Result& res = results[i];
      nt::ResilientClientConfig cfg;
      cfg.port = port;
      cfg.connect_timeout_ms = 2000;
      cfg.request_timeout_ms = 10000;
      cfg.max_attempts = 400;  // must ride out two restart gaps
      cfg.backoff_base_ms = 1;
      cfg.backoff_cap_ms = 50;
      cfg.jitter_seed = kChaosSeed ^ (0x9E3779B97F4A7C15ull * (i + 1));
      nt::ResilientClient rc(cfg);
      const std::string algo = kAlgos[i % std::size(kAlgos)];
      const std::uint64_t seed = 5000 + i;
      std::vector<std::uint8_t> buf;
      for (std::size_t r = 0; r < kReqs; ++r) {
        if (std::chrono::steady_clock::now() > deadline) {
          res.error = "global deadline exceeded";
          return;
        }
        const std::uint64_t off = offs[i][r];
        const std::size_t n = static_cast<std::size_t>(offs[i][r + 1] - off);
        buf.resize(n);
        try {
          rc.fetch(algo, seed, off, buf);
        } catch (const std::exception& e) {
          res.error = e.what();
          return;
        }
        if (!std::equal(buf.begin(), buf.end(), expected[i].begin() + off))
          ++res.mismatches;
        ++res.done;
      }
      total_retries.fetch_add(rc.stats().retries);
      total_reconnects.fetch_add(rc.stats().reconnects);
    });
  }

  // 4. Kill and restart the server twice while the fleet runs.  The gap is
  // real: clients see refused connects and half-written frames.
  for (int restart = 0; restart < 2; ++restart) {
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    server->stop();
    server.reset();
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    server = start_on_port(port, server_config);
    ASSERT_NE(server, nullptr) << "restart " << restart << " could not rebind";
  }

  for (std::thread& t : fleet) t.join();
  faults.disarm();

  std::size_t complete = 0;
  std::uint64_t mismatches = 0;
  for (std::size_t i = 0; i < kConns; ++i) {
    mismatches += results[i].mismatches;
    if (results[i].done == kReqs) {
      ++complete;
    } else {
      ADD_FAILURE() << "conn " << i << " (" << kAlgos[i % std::size(kAlgos)]
                    << ") finished " << results[i].done << "/" << kReqs
                    << ": " << results[i].error;
    }
  }
  EXPECT_EQ(complete, kConns);
  EXPECT_EQ(mismatches, 0u) << "delivered bytes diverged from the oracle";
  // The weather was real: faults fired, and the clients had to work.
  EXPECT_GT(faults.total_fired(), 0u);
  EXPECT_GT(total_retries.load() + total_reconnects.load(), 0u);

  server->stop();
}

TEST_F(ChaosTest, FaultScheduleItselfIsDeterministicAcrossArmCycles) {
  // Same seed + same per-point traffic => same injected-fault decisions,
  // run twice in one process via reset_counts.  This is the property that
  // makes a chaos failure reproducible from its seed.
  fa::FaultRegistry& faults = fa::faults();
  faults.clear();
  faults.arm(kChaosSeed, 0.1);
  fa::FaultPoint& p = faults.point("net.server.read_short");
  std::vector<bool> first;
  for (int i = 0; i < 200; ++i) first.push_back(p.fire());
  faults.reset_counts();
  std::vector<bool> second;
  for (int i = 0; i < 200; ++i) second.push_back(p.fire());
  EXPECT_EQ(first, second);
}
