// trickle_test.cpp — protocol framing under adversarial fragmentation.
//
// The server's reader must be indifferent to HOW bytes arrive: a pipelined
// batch delivered in one write, byte-at-a-time (every length prefix split
// across reads), or in pseudo-random fragments must produce the identical
// response sequence.  Fragment sizes come from the pinned splitmix64
// schedule, so a failing fragmentation is reproducible from the test alone.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/keyschedule.hpp"
#include "core/registry.hpp"
#include "core/stream_engine.hpp"
#include "net/client.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"
#include "net/session.hpp"

namespace nt = bsrng::net;
namespace co = bsrng::core;

namespace {

struct Reply {
  nt::Status status;
  std::vector<std::uint8_t> payload;
  bool operator==(const Reply&) const = default;
};

// The adversarial batch: pings, contiguous and non-contiguous generates for
// two tenants, and an unknown algorithm (error responses must line up too).
std::vector<std::vector<std::uint8_t>> batch_frames() {
  std::vector<std::vector<std::uint8_t>> frames;
  frames.push_back(nt::encode_simple_request(nt::kPing));
  frames.push_back(nt::encode_generate({"grain-bs64", 7, 0, 512}));
  frames.push_back(nt::encode_generate({"grain-bs64", 7, 512, 333}));
  frames.push_back(nt::encode_generate({"no-such-algo", 1, 0, 16}));
  frames.push_back(nt::encode_generate({"mickey-bs64", 9, 64, 1024}));
  frames.push_back(nt::encode_simple_request(nt::kPing));
  frames.push_back(nt::encode_generate({"grain-bs64", 7, 845, 77}));
  return frames;
}

// Send `wire` to a fresh connection in fragments chosen by `next_len`, then
// read one response per request.
std::vector<Reply> roundtrip(std::uint16_t port,
                             const std::vector<std::uint8_t>& wire,
                             std::size_t nreq,
                             const std::function<std::size_t()>& next_len) {
  nt::Client client("127.0.0.1", port);
  std::size_t off = 0;
  while (off < wire.size()) {
    const std::size_t len = std::min(next_len(), wire.size() - off);
    client.send_raw(std::span(wire.data() + off, len));
    off += len;
    // A short pause every fragment makes a cross-read split near-certain
    // (the server drains its socket faster than we trickle).
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  std::vector<Reply> replies;
  for (std::size_t i = 0; i < nreq; ++i) {
    nt::Response resp;
    EXPECT_EQ(client.read_response(resp, 15000),
              nt::Client::ReadResult::kFrame)
        << "response " << i;
    replies.push_back({resp.status, std::move(resp.payload)});
  }
  return replies;
}

}  // namespace

TEST(Trickle, FragmentationNeverChangesTheResponseStream) {
  nt::Server server({.workers = 2});
  server.start();
  const std::uint16_t port = server.port();

  const auto frames = batch_frames();
  std::vector<std::uint8_t> wire;
  for (const auto& f : frames) wire.insert(wire.end(), f.begin(), f.end());

  // Reference: the whole pipelined batch in a single write.
  const auto reference =
      roundtrip(port, wire, frames.size(), [&] { return wire.size(); });
  ASSERT_EQ(reference.size(), frames.size());
  EXPECT_EQ(reference[0].status, nt::Status::kOk);   // ping
  EXPECT_EQ(reference[1].status, nt::Status::kOk);
  EXPECT_EQ(reference[1].payload.size(), 512u);
  EXPECT_EQ(reference[3].status, nt::Status::kUnknownAlgorithm);

  // The first generate really is the canonical stream.
  std::vector<std::uint8_t> expect(512);
  co::make_generator("grain-bs64", 7)->fill(expect);
  EXPECT_EQ(reference[1].payload, expect);

  // Byte-at-a-time: every header and every frame split across reads.
  const auto bytewise =
      roundtrip(port, wire, frames.size(), [] { return std::size_t{1}; });
  EXPECT_EQ(bytewise, reference);

  // Pseudo-random fragments (1..9 bytes) off the pinned schedule.
  co::keyschedule::SeedStream frag(0x791CC1Eull);
  const auto random_frag = roundtrip(port, wire, frames.size(), [&] {
    return static_cast<std::size_t>(frag.next_word() % 9 + 1);
  });
  EXPECT_EQ(random_frag, reference);

  server.stop();
}

TEST(Trickle, HeaderSplitAcrossTcpSegmentsStillParses) {
  // The sharpest split: exactly one byte of the 4-byte length prefix, a
  // long pause, then the rest — the server must hold the partial header
  // without misparsing or closing (the loris timeout is far away).
  nt::Server server({.workers = 1});
  server.start();
  nt::Client client("127.0.0.1", server.port());
  const auto frame = nt::encode_generate({"trivium-bs64", 3, 0, 256});
  client.send_raw(std::span(frame.data(), 1));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  client.send_raw(std::span(frame.data() + 1, 2));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  client.send_raw(std::span(frame.data() + 3, frame.size() - 3));

  nt::Response resp;
  ASSERT_EQ(client.read_response(resp, 15000), nt::Client::ReadResult::kFrame);
  EXPECT_EQ(resp.status, nt::Status::kOk);
  std::vector<std::uint8_t> expect(256);
  co::make_generator("trivium-bs64", 3)->fill(expect);
  EXPECT_EQ(resp.payload, expect);
  server.stop();
}
