// server_test.cpp — bsrngd's server against a live loopback socket: served
// bytes equal the canonical make_generator stream for every topology,
// pipelined contiguous requests batch into single engine spans, protocol
// violations answer kBadFrame and close without leaking, and a slow reader
// stalls only itself.
#include <gtest/gtest.h>
#include <sys/socket.h>

#include <chrono>
#include <functional>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "core/registry.hpp"
#include "net/client.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"
#include "telemetry/json.hpp"

namespace co = bsrng::core;
namespace nt = bsrng::net;

namespace {

constexpr std::uint64_t kSeed = 0xB5126'2024ull;

std::vector<std::uint8_t> reference_bytes(const std::string& algo,
                                          std::uint64_t seed,
                                          std::uint64_t offset,
                                          std::size_t n) {
  std::vector<std::uint8_t> all(offset + n);
  co::make_generator(algo, seed)->fill(all);
  return {all.begin() + static_cast<std::ptrdiff_t>(offset), all.end()};
}

// The server's stats are updated by its loop thread; leak assertions poll
// with a deadline instead of racing a single read.
bool wait_until(const std::function<bool()>& pred,
                std::chrono::milliseconds limit = std::chrono::seconds(10)) {
  const auto deadline = std::chrono::steady_clock::now() + limit;
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return true;
}

}  // namespace

TEST(Server, StartStopIsClean) {
  nt::Server server({.workers = 2});
  EXPECT_FALSE(server.running());
  server.start();
  EXPECT_TRUE(server.running());
  EXPECT_NE(server.port(), 0);
  server.stop();
  EXPECT_FALSE(server.running());
  server.stop();  // idempotent
}

TEST(Server, GenerateMatchesCanonicalStream) {
  nt::Server server({.workers = 3});
  server.start();
  nt::Client client("127.0.0.1", server.port());

  // One algorithm of each partition kind, served at offset 0 and resumed at
  // an unaligned offset; bytes must equal the direct generator stream.
  for (const std::string algo :
       {"aes-ctr-bs64", "mickey-bs32", "mt19937"}) {
    const auto head = client.generate(algo, kSeed, 0, 4099);
    EXPECT_EQ(head, reference_bytes(algo, kSeed, 0, 4099)) << algo;
    const auto tail = client.generate(algo, kSeed, 4099, 1021);
    EXPECT_EQ(tail, reference_bytes(algo, kSeed, 4099, 1021)) << algo;
  }
  server.stop();
}

TEST(Server, SameBytesForEveryWorkerCount) {
  // "Same seed, any topology, same bytes": 1-worker and 4-worker daemons
  // serve identical spans.
  std::vector<std::uint8_t> one, four;
  for (const std::size_t workers : {1u, 4u}) {
    nt::Server server({.workers = workers});
    server.start();
    nt::Client client("127.0.0.1", server.port());
    auto bytes = client.generate("chacha20-bs64", 42, 777, 65536);
    (workers == 1 ? one : four) = std::move(bytes);
    server.stop();
  }
  EXPECT_EQ(one, four);
  EXPECT_EQ(one, reference_bytes("chacha20-bs64", 42, 777, 65536));
}

TEST(Server, PipelinedContiguousRequestsBatchIntoOneSpan) {
  nt::Server server({.workers = 2});
  server.start();
  nt::Client client("127.0.0.1", server.port());

  // Ten contiguous spans of one tenant stream, written in one burst: the
  // server merges the buffered prefix into one engine span and slices it
  // back into ten responses.
  const std::string algo = "trivium-bs64";
  const std::size_t span = 2048;
  std::vector<std::uint8_t> got;
  for (std::size_t i = 0; i < 10; ++i)
    client.send_generate(algo, kSeed, i * span,
                         static_cast<std::uint32_t>(span));
  for (std::size_t i = 0; i < 10; ++i) {
    const auto resp = client.read_response();
    ASSERT_TRUE(resp.has_value()) << i;
    ASSERT_EQ(resp->status, nt::Status::kOk) << i;
    ASSERT_EQ(resp->payload.size(), span) << i;
    got.insert(got.end(), resp->payload.begin(), resp->payload.end());
  }
  EXPECT_EQ(got, reference_bytes(algo, kSeed, 0, 10 * span));
  // At least one merge must have happened (the burst is written before the
  // server wakes, so its read buffer holds several frames at once).
  EXPECT_TRUE(wait_until([&] { return server.stats().batched_spans > 0; }));
  server.stop();
}

TEST(Server, InterleavedTenantsOnOneConnectionStaySeamless) {
  nt::Server server({.workers = 3});
  server.start();
  nt::Client client("127.0.0.1", server.port());

  struct Tenant {
    std::string algo;
    std::uint64_t seed;
    std::uint64_t cursor = 0;
    std::vector<std::uint8_t> got;
  };
  Tenant t[3] = {{"aes-ctr-bs64", 1, 0, {}},
                 {"grain-bs64", 2, 0, {}},
                 {"a51-bs64", 3, 0, {}}};
  const std::size_t spans[] = {511, 2048, 97, 4096};
  for (std::size_t step = 0; step < 24; ++step) {
    Tenant& cur = t[step % 3];
    const auto n = static_cast<std::uint32_t>(spans[step % 4]);
    const auto bytes = client.generate(cur.algo, cur.seed, cur.cursor, n);
    cur.got.insert(cur.got.end(), bytes.begin(), bytes.end());
    cur.cursor += n;
  }
  for (const Tenant& tt : t)
    EXPECT_EQ(tt.got, reference_bytes(tt.algo, tt.seed, 0, tt.got.size()))
        << tt.algo;
  // Three tenants -> three live sessions on the connection.
  EXPECT_TRUE(wait_until([&] { return server.stats().sessions == 3; }));
  server.stop();
}

TEST(Server, PingMetricsAndHttpScrapeWork) {
  nt::Server server({.workers = 2});
  server.start();

  nt::Client client("127.0.0.1", server.port());
  client.ping();
  const std::string json = client.metrics_json();
  const auto doc = bsrng::telemetry::json_parse(json);
  ASSERT_TRUE(doc.has_value());
  EXPECT_TRUE(doc->is_object());

  // The same port speaks enough HTTP for `curl /metrics`.
  nt::Client probe("127.0.0.1", server.port());
  const std::string get = "GET /metrics HTTP/1.0\r\n\r\n";
  probe.send_raw({reinterpret_cast<const std::uint8_t*>(get.data()),
                  get.size()});
  std::string http;
  while (true) {
    std::uint8_t buf[4096];
    const auto n = ::recv(probe.fd(), buf, sizeof buf, 0);
    if (n <= 0) break;
    http.append(reinterpret_cast<const char*>(buf),
                static_cast<std::size_t>(n));
  }
  EXPECT_NE(http.find("200 OK"), std::string::npos);
  EXPECT_NE(http.find("application/json"), std::string::npos);
  const auto body_at = http.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  EXPECT_TRUE(bsrng::telemetry::json_parse(http.substr(body_at + 4))
                  .has_value());
  server.stop();
}

TEST(Server, ErrorStatusesLeaveTheConnectionUsable) {
  nt::Server server({.workers = 2});
  server.start();
  nt::Client client("127.0.0.1", server.port());

  // Unknown algorithm.
  client.send_generate("not-a-generator", 1, 0, 64);
  auto resp = client.read_response();
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, nt::Status::kUnknownAlgorithm);

  // Over the per-request ceiling.
  client.send_generate("aes-ctr-bs64", 1, 0,
                       static_cast<std::uint32_t>(nt::kMaxGenerateBytes + 1));
  resp = client.read_response();
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, nt::Status::kTooLarge);

  // A span running past the end of the 2^64-byte stream address space is
  // refused up front, never handed to the engine with a wrapped end.
  client.send_generate("aes-ctr-bs64", 1,
                       std::numeric_limits<std::uint64_t>::max() - 16, 64);
  resp = client.read_response();
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, nt::Status::kTooLarge);

  // Zero-length generate is a valid empty span.
  client.send_generate("mickey-bs64", 1, 9, 0);
  resp = client.read_response();
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, nt::Status::kOk);
  EXPECT_TRUE(resp->payload.empty());

  // The connection survived all of the above.
  EXPECT_EQ(client.generate("aes-ctr-bs64", 1, 0, 128),
            reference_bytes("aes-ctr-bs64", 1, 0, 128));
  server.stop();
}

TEST(Server, MalformedFrameAnswersBadFrameThenCloses) {
  nt::Server server({.workers = 2});
  server.start();
  nt::Client client("127.0.0.1", server.port());

  // A well-framed but unparseable body.
  std::vector<std::uint8_t> frame;
  nt::append_u32le(frame, 3);
  frame.insert(frame.end(), {0x7F, 0x00, 0x01});
  client.send_raw(frame);
  const auto resp = client.read_response();
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, nt::Status::kBadFrame);
  // Terminal: the server closes after the diagnostic.
  EXPECT_FALSE(client.read_response().has_value());
  EXPECT_TRUE(wait_until([&] {
    const auto s = server.stats();
    return s.bad_frames >= 1 && s.connections == 0;
  }));
  server.stop();
}

TEST(Server, OversizedLengthPrefixClosesWithoutBuffering) {
  nt::Server server({.workers = 2});
  server.start();
  nt::Client client("127.0.0.1", server.port());

  std::vector<std::uint8_t> prefix;
  nt::append_u32le(prefix,
                   static_cast<std::uint32_t>(nt::kMaxRequestBody + 1));
  client.send_raw(prefix);
  const auto resp = client.read_response();
  if (resp.has_value()) {
    EXPECT_EQ(resp->status, nt::Status::kBadFrame);
  }
  EXPECT_FALSE(client.read_response().has_value());
  EXPECT_TRUE(wait_until([&] {
    const auto s = server.stats();
    return s.bad_frames >= 1 && s.connections == 0;
  }));
  server.stop();
}

TEST(Server, BadFrameAfterPipelinedWorkStillAnswersTheBacklog) {
  // Poisoning is ordered: requests already decoded before the malformed
  // frame get real answers, then kBadFrame, then close.
  nt::Server server({.workers = 2});
  server.start();
  nt::Client client("127.0.0.1", server.port());

  client.send_generate("aes-ctr-bs64", 5, 0, 256);
  std::vector<std::uint8_t> junk;
  nt::append_u32le(junk, 1);
  junk.push_back(0xEE);
  client.send_raw(junk);

  auto resp = client.read_response();
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, nt::Status::kOk);
  EXPECT_EQ(resp->payload, reference_bytes("aes-ctr-bs64", 5, 0, 256));
  resp = client.read_response();
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, nt::Status::kBadFrame);
  EXPECT_FALSE(client.read_response().has_value());
  server.stop();
}

TEST(Server, HalfClosedPeerStillGetsItsPipelinedAnswers) {
  // Write requests, shutdown(SHUT_WR), then read: the EOF reaches the
  // server with complete frames still buffered, and every one of them must
  // be answered before the server closes its side.
  nt::Server server({.workers = 2});
  server.start();
  nt::Client client("127.0.0.1", server.port());

  const std::string algo = "mickey-bs64";
  const std::size_t span = 1024;
  const std::size_t kSpans = 6;
  for (std::size_t i = 0; i < kSpans; ++i)
    client.send_generate(algo, kSeed, i * span,
                         static_cast<std::uint32_t>(span));
  client.send_ping();
  ASSERT_EQ(::shutdown(client.fd(), SHUT_WR), 0);

  std::vector<std::uint8_t> got;
  for (std::size_t i = 0; i < kSpans; ++i) {
    const auto resp = client.read_response();
    ASSERT_TRUE(resp.has_value()) << i;
    ASSERT_EQ(resp->status, nt::Status::kOk) << i;
    got.insert(got.end(), resp->payload.begin(), resp->payload.end());
  }
  EXPECT_EQ(got, reference_bytes(algo, kSeed, 0, kSpans * span));
  const auto pong = client.read_response();
  ASSERT_TRUE(pong.has_value());
  EXPECT_EQ(pong->status, nt::Status::kOk);
  // Backlog served: the server closes cleanly and leaks nothing.
  EXPECT_FALSE(client.read_response().has_value());
  EXPECT_TRUE(wait_until([&] {
    const auto s = server.stats();
    return s.connections == 0 && s.sessions == 0;
  }));
  server.stop();
}

TEST(Server, ForwardSeekBeyondBoundAnswersSeekTooFar) {
  // Lane-slice and sequential sessions reach an offset by clocking through
  // the gap inline on the loop thread; a gap beyond max_seek_bytes must be
  // refused instantly — unbounded, it would starve every connection and
  // make stop() hang joining the loop.
  nt::Server server({.workers = 2, .max_seek_bytes = 64u << 10});
  server.start();
  nt::Client client("127.0.0.1", server.port());

  for (const std::string algo : {"mickey-bs64", "mt19937"}) {
    client.send_generate(algo, kSeed, std::uint64_t{1} << 40, 64);
    const auto resp = client.read_response();
    ASSERT_TRUE(resp.has_value()) << algo;
    EXPECT_EQ(resp->status, nt::Status::kSeekTooFar) << algo;
  }
  // The refusal leaves the connection usable, and the bound applies to the
  // seek *gap*, not the absolute offset: sequential traffic walks a stream
  // far past max_seek_bytes one in-bound span at a time.
  const std::uint32_t kSpan = 48u << 10;
  std::vector<std::uint8_t> got;
  for (std::size_t i = 0; i < 4; ++i) {
    const auto bytes = client.generate("mickey-bs64", kSeed, got.size(),
                                       kSpan);
    got.insert(got.end(), bytes.begin(), bytes.end());
  }
  EXPECT_EQ(got, reference_bytes("mickey-bs64", kSeed, 0, got.size()));
  // Counter sessions seek O(1) and are exempt: a beyond-2^40 offset is
  // served, byte-equal to the spec's own block factory.
  const auto spec = co::partition_spec("aes-ctr-bs64", kSeed);
  ASSERT_EQ(spec.kind, co::PartitionKind::kCounter);
  const std::uint64_t off = (std::uint64_t{1} << 41) + 3;
  const std::size_t n = 256;
  const std::size_t lead = static_cast<std::size_t>(off % spec.block_bytes);
  std::vector<std::uint8_t> ref(lead + n);
  spec.make_at_block(off / spec.block_bytes)->fill(ref);
  EXPECT_EQ(client.generate("aes-ctr-bs64", kSeed, off,
                            static_cast<std::uint32_t>(n)),
            std::vector<std::uint8_t>(
                ref.begin() + static_cast<std::ptrdiff_t>(lead), ref.end()));
  server.stop();
}

TEST(Server, AbruptDisconnectsLeakNothing) {
  nt::Server server({.workers = 2});
  server.start();

  {
    // Half a frame, then vanish.
    nt::Client partial("127.0.0.1", server.port());
    std::vector<std::uint8_t> half;
    nt::append_u32le(half, 64);
    half.insert(half.end(), {1, 2, 3});
    partial.send_raw(half);

    // A live session, then vanish mid-stream.
    nt::Client mid("127.0.0.1", server.port());
    (void)mid.generate("grain-bs64", 9, 0, 4096);
    mid.send_generate("grain-bs64", 9, 4096, 65536);

    EXPECT_TRUE(wait_until([&] { return server.stats().accepted >= 2; }));
  }  // both sockets close here

  EXPECT_TRUE(wait_until([&] {
    const auto s = server.stats();
    return s.connections == 0 && s.sessions == 0;
  }));
  server.stop();
}

TEST(Server, SlowReaderStallsOnlyItself) {
  // Tiny watermarks force backpressure almost immediately.
  nt::Server server({.workers = 2,
                     .max_write_queue = 64u << 10,
                     .resume_write_queue = 16u << 10});
  server.start();

  nt::Client slow("127.0.0.1", server.port());
  const std::size_t kSpans = 24;
  const std::uint32_t kSpan = 32u << 10;  // 768 KiB total, 12x the queue cap
  for (std::size_t i = 0; i < kSpans; ++i)
    slow.send_generate("chacha20-bs64", 77, i * kSpan, kSpan);
  // Do NOT read yet; the server must hit the high watermark and pause
  // reading this connection.
  EXPECT_TRUE(
      wait_until([&] { return server.stats().backpressure_stalls > 0; }));

  // Meanwhile a normal client is fully served.
  nt::Client fast("127.0.0.1", server.port());
  EXPECT_EQ(fast.generate("aes-ctr-bs64", 8, 0, 8192),
            reference_bytes("aes-ctr-bs64", 8, 0, 8192));

  // Drain the slow connection: every span arrives intact and in order.
  std::vector<std::uint8_t> got;
  for (std::size_t i = 0; i < kSpans; ++i) {
    const auto resp = slow.read_response();
    ASSERT_TRUE(resp.has_value()) << i;
    ASSERT_EQ(resp->status, nt::Status::kOk) << i;
    got.insert(got.end(), resp->payload.begin(), resp->payload.end());
  }
  EXPECT_EQ(got, reference_bytes("chacha20-bs64", 77, 0, kSpans * kSpan));
  server.stop();
}

TEST(Server, StopClosesEveryConnection) {
  nt::Server server({.workers = 2});
  server.start();
  nt::Client a("127.0.0.1", server.port());
  nt::Client b("127.0.0.1", server.port());
  a.ping();
  b.ping();
  server.stop();
  EXPECT_FALSE(a.read_response().has_value());
  EXPECT_FALSE(b.read_response().has_value());
  EXPECT_EQ(server.stats().connections, 0u);
}
