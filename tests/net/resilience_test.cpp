// resilience_test.cpp — the hardened serving path, mechanism by mechanism:
// connect deadlines, idle and slow-loris timeouts, overload shedding and
// per-tenant quotas (kRetryLater + hint), graceful drain, and
// ResilientClient's reconnect-and-resume across a server restart.  The
// chaos suite (chaos_test.cpp) exercises all of these at once under the
// seeded fault schedule; here each is pinned in isolation.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <system_error>
#include <thread>
#include <vector>

#include "core/registry.hpp"
#include "core/stream_engine.hpp"
#include "net/client.hpp"
#include "net/protocol.hpp"
#include "net/resilient_client.hpp"
#include "net/server.hpp"
#include "net/session.hpp"

namespace nt = bsrng::net;
namespace co = bsrng::core;

namespace {

using Clock = std::chrono::steady_clock;

std::vector<std::uint8_t> oracle_bytes(const std::string& algo,
                                       std::uint64_t seed, std::size_t n) {
  std::vector<std::uint8_t> out(n);
  co::make_generator(algo, seed)->fill(out);
  return out;
}

// Bind-and-listen on an ephemeral port WITHOUT ever accepting, with a
// backlog of 1, then saturate the accept queue — further connects hang in
// SYN limbo, which is what the client's connect deadline is for.
struct DeafListener {
  int fd = -1;
  std::uint16_t port = 0;
  std::vector<int> fillers;

  bool open() {
    fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (fd < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
        ::listen(fd, 1) < 0)
      return false;
    socklen_t len = sizeof addr;
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0)
      return false;
    port = ntohs(addr.sin_port);
    // Fill the backlog: these connects complete (kernel queue) but are
    // never accepted.
    for (int i = 0; i < 4; ++i) {
      const int c =
          ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
      if (c < 0) break;
      (void)::connect(c, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
      fillers.push_back(c);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    return true;
  }

  ~DeafListener() {
    for (int c : fillers) ::close(c);
    if (fd >= 0) ::close(fd);
  }
};

// Re-bind a fixed port, retrying while the old socket's teardown races us.
std::unique_ptr<nt::Server> start_on_port(std::uint16_t port,
                                          nt::ServerConfig config) {
  config.port = port;
  for (int attempt = 0; attempt < 100; ++attempt) {
    auto server = std::make_unique<nt::Server>(config);
    try {
      server->start();
      return server;
    } catch (const std::system_error&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  return nullptr;
}

}  // namespace

TEST(Resilience, ConnectDeadlineFiresAgainstADeafListener) {
  DeafListener deaf;
  ASSERT_TRUE(deaf.open());
  const auto t0 = Clock::now();
  try {
    nt::Client client("127.0.0.1", deaf.port, /*connect_timeout_ms=*/300);
    // Some kernels still complete the handshake from the SYN queue; the
    // deadline then has nothing to measure.
    GTEST_SKIP() << "kernel accepted past the backlog; cannot provoke "
                    "a hanging connect here";
  } catch (const std::system_error& e) {
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        Clock::now() - t0);
    EXPECT_LT(elapsed.count(), 5000) << "deadline did not bound the connect";
    EXPECT_EQ(e.code().value(), ETIMEDOUT);
  }
}

TEST(Resilience, IdleConnectionsAreClosed) {
  nt::Server server({.workers = 1,
                     .poll_timeout_ms = 20,
                     .idle_timeout_ms = 100,
                     .partial_frame_timeout_ms = 0});
  server.start();
  nt::Client client("127.0.0.1", server.port());
  client.ping();  // activity, then silence

  nt::Response resp;
  const auto r = client.read_response(resp, 5000);
  EXPECT_EQ(r, nt::Client::ReadResult::kClosed)
      << "server must cut an idle connection";
  EXPECT_GE(server.stats().idle_closed, 1u);
  server.stop();
}

TEST(Resilience, SlowLorisPartialFrameIsCut) {
  nt::Server server({.workers = 1,
                     .poll_timeout_ms = 20,
                     .idle_timeout_ms = 0,
                     .partial_frame_timeout_ms = 100});
  server.start();
  nt::Client client("127.0.0.1", server.port());
  // Two bytes of a length prefix, then nothing: a loris holding a slot.
  const auto frame = nt::encode_simple_request(nt::kPing);
  client.send_raw(std::span(frame.data(), 2));

  nt::Response resp;
  EXPECT_EQ(client.read_response(resp, 5000), nt::Client::ReadResult::kClosed);
  EXPECT_GE(server.stats().idle_closed, 1u);
  server.stop();
}

TEST(Resilience, OverloadShedsWithRetryAfterHint) {
  // shed_queue_bytes of 1: once any response is queued, the next request in
  // the same decoded batch is shed with the configured hint.
  nt::Server server({.workers = 1,
                     .shed_queue_bytes = 1,
                     .retry_after_ms = 77});
  server.start();
  nt::Client client("127.0.0.1", server.port());
  // Two DIFFERENT tenants, so the batch cannot merge them into one engine
  // span: the first response lands in the write queue, and the second
  // request finds the queue over the bound.
  std::vector<std::uint8_t> wire;
  for (const auto& f : {nt::encode_generate({"grain-bs64", 5, 0, 4096}),
                        nt::encode_generate({"grain-bs64", 6, 0, 4096})})
    wire.insert(wire.end(), f.begin(), f.end());
  client.send_raw(wire);

  nt::Response first, second;
  ASSERT_EQ(client.read_response(first, 10000), nt::Client::ReadResult::kFrame);
  ASSERT_EQ(client.read_response(second, 10000),
            nt::Client::ReadResult::kFrame);
  EXPECT_EQ(first.status, nt::Status::kOk);
  EXPECT_EQ(second.status, nt::Status::kRetryLater);
  const auto hint = nt::decode_retry_after(second.payload);
  ASSERT_TRUE(hint.has_value());
  EXPECT_EQ(*hint, 77u);
  EXPECT_GE(server.stats().sheds, 1u);

  // The shed request retried at the same offset is byte-exact — nothing
  // about shedding advanced the stream.
  const auto expect = oracle_bytes("grain-bs64", 6, 4096);
  EXPECT_EQ(client.generate("grain-bs64", 6, 0, 4096), expect);
  server.stop();
}

TEST(Resilience, TenantInFlightQuotaShedsThenAdmitsOnRetry) {
  nt::Server server({.workers = 1, .tenant_max_pending = 1});
  server.start();
  nt::Client client("127.0.0.1", server.port());
  // Two same-tenant requests decoded in one batch: the second is over the
  // in-flight cap at admission and must be shed IN ORDER (after the first
  // response, not instead of it).
  std::vector<std::uint8_t> wire;
  for (const auto& f : {nt::encode_generate({"mickey-bs64", 2, 0, 1024}),
                        nt::encode_generate({"mickey-bs64", 2, 1024, 1024})})
    wire.insert(wire.end(), f.begin(), f.end());
  client.send_raw(wire);

  nt::Response first, second;
  ASSERT_EQ(client.read_response(first, 10000), nt::Client::ReadResult::kFrame);
  ASSERT_EQ(client.read_response(second, 10000),
            nt::Client::ReadResult::kFrame);
  EXPECT_EQ(first.status, nt::Status::kOk);
  EXPECT_EQ(second.status, nt::Status::kRetryLater);
  EXPECT_TRUE(nt::decode_retry_after(second.payload).has_value());

  // A different tenant is not collateral damage.
  EXPECT_EQ(client.generate("mickey-bs64", 3, 0, 512).size(), 512u);

  // And the shed tenant's retry completes byte-exact: the in-flight slot
  // was released with the shed, not leaked.
  const auto expect = oracle_bytes("mickey-bs64", 2, 2048);
  const auto retried = client.generate("mickey-bs64", 2, 1024, 1024);
  EXPECT_TRUE(std::equal(retried.begin(), retried.end(),
                         expect.begin() + 1024));
  server.stop();
}

TEST(Resilience, DrainServesTheBacklogThenStops) {
  nt::Server server({.workers = 2, .poll_timeout_ms = 20});
  server.start();
  nt::Client client("127.0.0.1", server.port());
  // Pipeline a backlog, then immediately drain: every queued request must
  // still be answered byte-exact before the connection closes.
  const std::size_t kReqs = 8;
  const std::size_t kSpan = 65536;
  std::vector<std::uint8_t> wire;
  for (std::size_t i = 0; i < kReqs; ++i) {
    const auto f = nt::encode_generate(
        {"chacha20-bs64", 6, i * kSpan, static_cast<std::uint32_t>(kSpan)});
    wire.insert(wire.end(), f.begin(), f.end());
  }
  client.send_raw(wire);

  std::thread drainer([&] { server.drain(/*deadline_ms=*/10000); });
  const auto expect = oracle_bytes("chacha20-bs64", 6, kReqs * kSpan);
  for (std::size_t i = 0; i < kReqs; ++i) {
    nt::Response resp;
    ASSERT_EQ(client.read_response(resp, 15000),
              nt::Client::ReadResult::kFrame)
        << "request " << i << " lost in drain";
    ASSERT_EQ(resp.status, nt::Status::kOk);
    ASSERT_EQ(resp.payload.size(), kSpan);
    EXPECT_TRUE(std::equal(resp.payload.begin(), resp.payload.end(),
                           expect.begin() + i * kSpan))
        << "request " << i;
  }
  // Backlog served; the drained server now closes the quiet connection.
  nt::Response eof;
  EXPECT_EQ(client.read_response(eof, 10000), nt::Client::ReadResult::kClosed);
  drainer.join();
  EXPECT_FALSE(server.running());
  EXPECT_GE(server.stats().drains, 1u);
}

TEST(Resilience, ResilientClientResumesByteExactAcrossServerRestart) {
  auto server = std::make_unique<nt::Server>(nt::ServerConfig{.workers = 2});
  server->start();
  const std::uint16_t port = server->port();

  nt::ResilientClientConfig cfg;
  cfg.port = port;
  cfg.connect_timeout_ms = 1000;
  cfg.request_timeout_ms = 5000;
  cfg.max_attempts = 200;
  cfg.backoff_base_ms = 1;
  cfg.backoff_cap_ms = 50;
  cfg.jitter_seed = 4242;
  cfg.span_bytes = 8192;
  nt::ResilientClient rc(cfg);

  const std::string algo = "a51-bs64";
  const std::size_t total = 192 * 1024 + 11;
  const auto expect = oracle_bytes(algo, 31, total);
  std::vector<std::uint8_t> got(total, 0);
  const std::size_t half = total / 2;
  rc.fetch(algo, 31, 0, std::span(got.data(), half));

  // Kill the server mid-stream and restart it on the same port: the client
  // reconnects and re-asks for the exact offset it is owed.
  server->stop();
  server.reset();
  server = start_on_port(port, nt::ServerConfig{.workers = 2});
  ASSERT_NE(server, nullptr) << "could not rebind " << port;

  rc.fetch(algo, 31, half, std::span(got.data() + half, total - half));
  EXPECT_EQ(got, expect);
  EXPECT_GE(rc.stats().reconnects, 1u)
      << "the restart must have forced a reconnect";
  server->stop();
}
