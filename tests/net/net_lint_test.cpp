// net_lint_test.cpp — the determinism lint vs the serving layer.  The lint
// guards the GENERATION trees (bytes must never depend on time, rand, or
// pointer order); src/net is a consumer with legitimate wall-clock needs
// (the start-time gauge), so it is deliberately NOT a default root.  This
// suite pins both sides: the default roots still lint clean against the
// real sources, src/net stays out of them, and an explicit lint pass over
// src/net finds nothing because its one wall-clock read carries the
// in-place suppression.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analysis/lint.hpp"

namespace an = bsrng::analysis;

namespace {

std::string repo_root() {
#ifdef BSRNG_SOURCE_DIR
  return BSRNG_SOURCE_DIR;
#else
  return {};
#endif
}

}  // namespace

TEST(NetLint, DefaultRootsDoNotIncludeTheServingLayer) {
  const auto roots = an::default_lint_roots("/repo");
  EXPECT_TRUE(std::none_of(roots.begin(), roots.end(), [](const auto& r) {
    return r.find("src/net") != std::string::npos;
  })) << "src/net must stay out of the generation-tree lint";
  // And the guarded trees are all still there — adding net must not have
  // displaced a root.  src/fault is IN the defaults: an injected fault
  // schedule must be as deterministic as the streams it disturbs.
  for (const char* must : {"/repo/src/core", "/repo/src/ciphers",
                           "/repo/src/bitslice", "/repo/src/lfsr",
                           "/repo/src/fault", "/repo/src/stream"})
    EXPECT_NE(std::find(roots.begin(), roots.end(), must), roots.end())
        << must;
}

TEST(NetLint, GenerationTreesStayClockFree) {
  const std::string root = repo_root();
  ASSERT_FALSE(root.empty()) << "BSRNG_SOURCE_DIR not compiled in";
  const auto findings = an::lint_paths(an::default_lint_roots(root));
  for (const auto& f : findings) ADD_FAILURE() << f.to_string();
  EXPECT_TRUE(findings.empty());
}

TEST(NetLint, ServingLayerLintsCleanUnderExplicitScan) {
  // src/net is outside the defaults but not above the law: scanned
  // explicitly it must still produce zero findings, because its sole
  // wall-clock read (the net.started_unix_seconds gauge) is annotated with
  // an in-place suppression rather than exempted by omission.
  const std::string root = repo_root();
  ASSERT_FALSE(root.empty()) << "BSRNG_SOURCE_DIR not compiled in";
  const auto findings = an::lint_paths({root + "/src/net"});
  for (const auto& f : findings) ADD_FAILURE() << f.to_string();
  EXPECT_TRUE(findings.empty());
}

TEST(NetLint, UnannotatedWallClockInNetStyleCodeIsStillFlagged) {
  // The suppression is the load-bearing part: the same gauge-seeding line
  // without its annotation is a finding.  This keeps "net is exempt" from
  // silently becoming "net is unlinted".
  const auto findings = an::lint_source(
      "server.cpp",
      "started.set(static_cast<double>(time(nullptr)));\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "wall-clock");

  EXPECT_TRUE(an::lint_source(
                  "server.cpp",
                  "started.set(static_cast<double>(time(nullptr)));  "
                  "// bsrng-lint: allow(wall-clock)\n")
                  .empty());
}
