// net_metrics_test.cpp — telemetry under concurrent serving: the /metrics
// document parses and round-trips through MetricsSnapshot::from_json while
// generate traffic is in flight, the net.* counters are monotone across
// scrapes, and a disabled registry costs the serving path nothing (the
// daemon still answers, the counters just stay flat).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "net/protocol.hpp"
#include "net/resilient_client.hpp"
#include "net/server.hpp"
#include "telemetry/metrics.hpp"

namespace nt = bsrng::net;
namespace tel = bsrng::telemetry;

namespace {

// Tests toggle the process-global registry; restore it afterwards so test
// order never matters.
class NetMetricsTest : public ::testing::Test {
 protected:
  void SetUp() override { was_enabled_ = tel::metrics().enabled(); }
  void TearDown() override { tel::metrics().set_enabled(was_enabled_); }
  bool was_enabled_ = false;
};

double counter_value(const tel::MetricsSnapshot& snap, const char* name) {
  const tel::MetricValue* m = snap.find(name);
  return m == nullptr ? 0.0 : m->value;
}

}  // namespace

TEST_F(NetMetricsTest, ScrapesRoundTripAndStayMonotoneUnderLoad) {
  tel::metrics().set_enabled(true);
  nt::Server server({.workers = 3});
  server.start();
  const std::uint16_t port = server.port();

  // Background load: four tenants streaming while the scrapes happen.
  std::atomic<bool> stop{false};
  std::vector<std::thread> load;
  for (std::size_t c = 0; c < 4; ++c) {
    load.emplace_back([&, c] {
      nt::Client client("127.0.0.1", port);
      std::uint64_t cursor = 0;
      while (!stop.load()) {
        (void)client.generate("chacha20-bs64", 50 + c, cursor, 4096);
        cursor += 4096;
      }
    });
  }

  nt::Client scraper("127.0.0.1", port);
  double last_requests = -1.0;
  double last_bytes = -1.0;
  for (int i = 0; i < 8; ++i) {
    const std::string json = scraper.metrics_json();
    const auto snap = tel::MetricsSnapshot::from_json(json);
    ASSERT_TRUE(snap.has_value()) << "scrape " << i << " did not parse";

    // Full fidelity round-trip: snapshot -> json -> snapshot -> json.
    const auto again = tel::MetricsSnapshot::from_json(snap->to_json());
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(again->to_json(), snap->to_json());

    // The serving counters exist and never move backwards.
    const double requests = counter_value(*snap, "net.requests");
    const double bytes = counter_value(*snap, "net.bytes_served");
    EXPECT_GE(requests, last_requests) << "scrape " << i;
    EXPECT_GE(bytes, last_bytes) << "scrape " << i;
    last_requests = requests;
    last_bytes = bytes;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GT(last_requests, 0.0);
  EXPECT_GT(last_bytes, 0.0);

  stop.store(true);
  for (auto& t : load) t.join();

  // Every ServerStats increment had a matching telemetry increment while
  // the registry was enabled, and telemetry is process-global, so a scrape
  // taken after the stats read can only be at or above it.
  const auto stats = server.stats();
  const auto snap =
      tel::MetricsSnapshot::from_json(scraper.metrics_json());
  ASSERT_TRUE(snap.has_value());
  EXPECT_GE(counter_value(*snap, "net.requests"),
            static_cast<double>(stats.requests));
  EXPECT_GT(counter_value(*snap, "net.accepted"), 0.0);
  server.stop();
}

TEST_F(NetMetricsTest, DisabledRegistryStillServesButCountsNothing) {
  tel::metrics().set_enabled(false);
  tel::metrics().reset();
  nt::Server server({.workers = 2});
  server.start();
  nt::Client client("127.0.0.1", server.port());
  (void)client.generate("aes-ctr-bs64", 3, 0, 1024);

  const auto snap =
      tel::MetricsSnapshot::from_json(client.metrics_json());
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(counter_value(*snap, "net.requests"), 0.0);
  EXPECT_EQ(counter_value(*snap, "net.bytes_served"), 0.0);
  // ServerStats counts regardless — it is the source of truth for tests.
  EXPECT_GE(server.stats().requests, 1u);
  server.stop();
}

TEST_F(NetMetricsTest, ResilienceCountersRoundTripThroughScrapes) {
  tel::metrics().set_enabled(true);
  tel::metrics().reset();
  // A 16 B/s tenant bucket can never afford a 4 KiB span, so the first
  // kGenerate is shed deterministically (no timing involved).
  nt::Server server({.workers = 2, .tenant_bytes_per_sec = 16});
  server.start();
  nt::Client client("127.0.0.1", server.port());
  client.send_generate("grain-bs64", 9, 0, 4096);
  nt::Response resp;
  ASSERT_EQ(client.read_response(resp, 5000), nt::Client::ReadResult::kFrame);
  EXPECT_EQ(resp.status, nt::Status::kRetryLater);
  const auto hint = nt::decode_retry_after(resp.payload);
  ASSERT_TRUE(hint.has_value());
  EXPECT_GT(*hint, 0u);

  // net.client.retries moves when a ResilientClient fails over: port 1 has
  // no listener, so every attempt is a refused connect followed by a retry.
  nt::ResilientClientConfig rcfg;
  rcfg.host = "127.0.0.1";
  rcfg.port = 1;
  rcfg.connect_timeout_ms = 200;
  rcfg.max_attempts = 3;
  rcfg.backoff_base_ms = 1;
  rcfg.backoff_cap_ms = 2;
  nt::ResilientClient rc(rcfg);
  EXPECT_THROW((void)rc.generate("grain-bs64", 9, 0, 64), std::runtime_error);
  EXPECT_EQ(rc.stats().retries, 2u);

  const auto snap = tel::MetricsSnapshot::from_json(client.metrics_json());
  ASSERT_TRUE(snap.has_value());
  EXPECT_GE(counter_value(*snap, "net.sheds"), 1.0);
  EXPECT_GE(counter_value(*snap, "net.client.retries"), 2.0);
  EXPECT_GE(server.stats().sheds, 1u);

  // Graceful drain: the idle connection is walked to closing, the counter
  // moves, and the registry (process-global) still shows it after stop.
  server.drain(/*deadline_ms=*/2000);
  EXPECT_GE(server.stats().drains, 1u);
  const auto after = tel::MetricsSnapshot::from_json(tel::metrics().to_json());
  ASSERT_TRUE(after.has_value());
  EXPECT_GE(counter_value(*after, "net.drains"), 1.0);
}

TEST_F(NetMetricsTest, EnabledRegistryTracksServerStats) {
  tel::metrics().set_enabled(true);
  tel::metrics().reset();
  nt::Server server({.workers = 2});
  server.start();
  nt::Client client("127.0.0.1", server.port());
  const std::size_t kN = 10;
  for (std::size_t i = 0; i < kN; ++i)
    (void)client.generate("mickey-bs64", 4, i * 512, 512);

  const auto snap =
      tel::MetricsSnapshot::from_json(client.metrics_json());
  ASSERT_TRUE(snap.has_value());
  // The scrape itself and the pings race ahead of the counter read, so the
  // generate floor is the only exact claim.
  EXPECT_GE(counter_value(*snap, "net.requests"),
            static_cast<double>(kN));
  EXPECT_GE(counter_value(*snap, "net.bytes_served"),
            static_cast<double>(kN * 512));
  EXPECT_GE(counter_value(*snap, "net.accepted"), 1.0);
  server.stop();
}
