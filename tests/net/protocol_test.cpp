// protocol_test.cpp — the wire format in isolation: encode/decode
// round-trips, every malformed-body rejection, and incremental frame
// extraction over a byte-at-a-time stream (the exact path a connection's
// read buffer follows).
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "net/protocol.hpp"

namespace nt = bsrng::net;

namespace {

// Strip the 4-byte length prefix off a full frame, checking it agrees.
std::vector<std::uint8_t> body_of(const std::vector<std::uint8_t>& frame) {
  EXPECT_GE(frame.size(), 4u);
  EXPECT_EQ(nt::read_u32le(frame.data()), frame.size() - 4);
  return {frame.begin() + 4, frame.end()};
}

}  // namespace

TEST(Protocol, LittleEndianHelpersRoundTrip) {
  std::vector<std::uint8_t> buf;
  nt::append_u32le(buf, 0x01020304u);
  nt::append_u64le(buf, 0x1122334455667788ull);
  ASSERT_EQ(buf.size(), 12u);
  EXPECT_EQ(buf[0], 0x04);  // least significant byte first
  EXPECT_EQ(buf[3], 0x01);
  EXPECT_EQ(nt::read_u32le(buf.data()), 0x01020304u);
  EXPECT_EQ(nt::read_u64le(buf.data() + 4), 0x1122334455667788ull);
}

TEST(Protocol, GenerateRequestRoundTrips) {
  const nt::GenerateRequest req{.algorithm = "aes-ctr-bs256",
                                .seed = 0xDEADBEEFCAFEF00Dull,
                                .offset = (1ull << 52) + 9,
                                .nbytes = 65536};
  const auto frame = nt::encode_generate(req);
  const auto decoded = nt::decode_request(body_of(frame));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->type, nt::kGenerate);
  EXPECT_EQ(decoded->generate.algorithm, req.algorithm);
  EXPECT_EQ(decoded->generate.seed, req.seed);
  EXPECT_EQ(decoded->generate.offset, req.offset);
  EXPECT_EQ(decoded->generate.nbytes, req.nbytes);
}

TEST(Protocol, SimpleRequestsRoundTrip) {
  for (const std::uint8_t type : {nt::kMetrics, nt::kPing}) {
    const auto frame = nt::encode_simple_request(type);
    const auto decoded = nt::decode_request(body_of(frame));
    ASSERT_TRUE(decoded.has_value()) << int{type};
    EXPECT_EQ(decoded->type, type);
  }
}

TEST(Protocol, ResponsesRoundTripEveryStatus) {
  const std::vector<std::uint8_t> payload = {1, 2, 3, 0, 255};
  for (const nt::Status st :
       {nt::Status::kOk, nt::Status::kBadFrame, nt::Status::kUnknownAlgorithm,
        nt::Status::kTooLarge, nt::Status::kServerError,
        nt::Status::kSeekTooFar}) {
    const auto frame = nt::encode_response(st, payload);
    const auto decoded = nt::decode_response(body_of(frame));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->status, st);
    EXPECT_EQ(decoded->payload, payload);
  }
}

TEST(Protocol, MalformedRequestBodiesAreRejected) {
  const auto good = body_of(nt::encode_generate(
      {.algorithm = "mickey-bs64", .seed = 7, .offset = 0, .nbytes = 16}));

  // Empty body, unknown type tag.
  EXPECT_FALSE(nt::decode_request({}).has_value());
  std::vector<std::uint8_t> unknown = {99};
  EXPECT_FALSE(nt::decode_request(unknown).has_value());

  // Simple requests must be exactly one byte.
  std::vector<std::uint8_t> fat_ping = {nt::kPing, 0};
  EXPECT_FALSE(nt::decode_request(fat_ping).has_value());

  // Truncation anywhere in a generate body is malformed.
  for (std::size_t cut = 1; cut < good.size(); ++cut) {
    const std::vector<std::uint8_t> part(good.begin(),
                                         good.begin() + cut);
    EXPECT_FALSE(nt::decode_request(part).has_value()) << "cut=" << cut;
  }

  // Trailing garbage after a complete body.
  auto padded = good;
  padded.push_back(0);
  EXPECT_FALSE(nt::decode_request(padded).has_value());

  // Declared algorithm length disagreeing with the body size.
  auto lied = good;
  lied[1] = static_cast<std::uint8_t>(lied[1] + 1);
  EXPECT_FALSE(nt::decode_request(lied).has_value());

  // Zero-length algorithm name.
  std::vector<std::uint8_t> anon = {nt::kGenerate, 0};
  nt::append_u64le(anon, 1);
  nt::append_u64le(anon, 0);
  nt::append_u32le(anon, 8);
  EXPECT_FALSE(nt::decode_request(anon).has_value());
}

TEST(Protocol, MalformedResponseBodiesAreRejected) {
  EXPECT_FALSE(nt::decode_response({}).has_value());
  std::vector<std::uint8_t> bad_status = {200, 'x'};
  EXPECT_FALSE(nt::decode_response(bad_status).has_value());
  // The first byte past the last defined status is already malformed.
  std::vector<std::uint8_t> next_status = {
      static_cast<std::uint8_t>(nt::Status::kBadCheckpoint) + 1, 'x'};
  EXPECT_FALSE(nt::decode_response(next_status).has_value());
}

TEST(Protocol, ExtractFrameIsIncremental) {
  // Two frames delivered one byte at a time: extract_frame must return
  // false until each frame completes, then yield bodies in order and leave
  // the remainder buffered.
  const auto f1 = nt::encode_simple_request(nt::kPing);
  const auto f2 = nt::encode_generate(
      {.algorithm = "grain-bs128", .seed = 3, .offset = 64, .nbytes = 32});
  std::vector<std::uint8_t> wire = f1;
  wire.insert(wire.end(), f2.begin(), f2.end());

  std::vector<std::uint8_t> buf, body;
  std::size_t got = 0;
  for (const std::uint8_t b : wire) {
    buf.push_back(b);
    while (nt::extract_frame(buf, body, nt::kMaxRequestBody)) {
      ++got;
      if (got == 1)
        EXPECT_EQ(body, std::vector<std::uint8_t>{nt::kPing});
      else
        EXPECT_EQ(body, body_of(f2));
    }
  }
  EXPECT_EQ(got, 2u);
  EXPECT_TRUE(buf.empty());
}

TEST(Protocol, OversizedLengthPrefixPoisonsTheStream) {
  // A length prefix beyond max_body must throw before any body buffering —
  // the caller treats the connection as poisoned.
  std::vector<std::uint8_t> buf;
  nt::append_u32le(buf, static_cast<std::uint32_t>(nt::kMaxRequestBody + 1));
  std::vector<std::uint8_t> body;
  EXPECT_THROW(nt::extract_frame(buf, body, nt::kMaxRequestBody),
               std::runtime_error);
}

TEST(Protocol, MaxSizeBodyIsAccepted) {
  std::vector<std::uint8_t> buf;
  nt::append_u32le(buf, 8);
  for (int i = 0; i < 8; ++i) buf.push_back(0xAB);
  std::vector<std::uint8_t> body;
  ASSERT_TRUE(nt::extract_frame(buf, body, 8));
  EXPECT_EQ(body.size(), 8u);
  EXPECT_TRUE(buf.empty());
}
