// restart_determinism_test.cpp — the headline invariant of the service
// layer: "same seed, any topology, same bytes".  For every bitsliced cipher
// family, a tenant stream served partly by one daemon, interrupted by a
// full server kill, and resumed by offset against a NEW daemon with a
// DIFFERENT worker count concatenates to exactly the canonical
// make_generator stream.  Nothing about the stream lives in the server, so
// nothing is lost with it.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "net/client.hpp"
#include "net/server.hpp"

namespace co = bsrng::core;
namespace nt = bsrng::net;

namespace {

constexpr std::uint64_t kSeed = 0xB5126'2024ull;

// All six bitsliced cipher families of the paper, at one width each (the
// per-width equivalence is test_core's job; here the subject is the server).
const char* const kCiphers[] = {"mickey-bs64", "grain-bs64", "trivium-bs64",
                                "aes-ctr-bs64", "a51-bs64", "chacha20-bs64"};

// TSan CI shrinks the per-cipher stream length.
std::size_t stream_bytes() {
  if (const char* env = std::getenv("BSRNG_NET_TEST_BYTES")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return 192 * 1024 + 13;  // not a multiple of any block or row size
}

class RestartDeterminism : public ::testing::TestWithParam<std::string> {};

}  // namespace

TEST_P(RestartDeterminism, KillRestartResumeIsByteExact) {
  const std::string algo = GetParam();
  const std::size_t total = stream_bytes();
  std::vector<std::uint8_t> reference(total);
  co::make_generator(algo, kSeed)->fill(reference);

  std::vector<std::uint8_t> got;
  got.reserve(total);

  // Phase 1: serve roughly half through a 3-worker daemon, in uneven spans.
  {
    nt::Server server({.workers = 3});
    server.start();
    nt::Client client("127.0.0.1", server.port());
    const std::size_t spans[] = {4093, 16384, 509, 32768};
    std::size_t si = 0;
    while (got.size() < total / 2) {
      const std::size_t n =
          std::min(spans[si++ % 4], total / 2 - got.size());
      const auto bytes = client.generate(
          algo, kSeed, got.size(), static_cast<std::uint32_t>(n));
      got.insert(got.end(), bytes.begin(), bytes.end());
    }
    server.stop();  // full kill: sessions, engine, sockets all die
    EXPECT_FALSE(client.read_response().has_value());
  }

  // Phase 2: a NEW daemon with a different worker count, resumed purely by
  // the client-held offset — including a mid-block offset.
  {
    nt::Server server({.workers = 1});
    server.start();
    nt::Client client("127.0.0.1", server.port());
    const std::size_t spans[] = {65536, 1021, 8192};
    std::size_t si = 0;
    while (got.size() < total) {
      const std::size_t n = std::min(spans[si++ % 3], total - got.size());
      const auto bytes = client.generate(
          algo, kSeed, got.size(), static_cast<std::uint32_t>(n));
      got.insert(got.end(), bytes.begin(), bytes.end());
    }
    server.stop();
  }

  ASSERT_EQ(got.size(), reference.size());
  EXPECT_EQ(got, reference)
      << algo << " diverged across the kill/restart boundary";
}

TEST_P(RestartDeterminism, RereadAfterRestartMatchesFirstServing) {
  // A tenant re-reading an old span from a fresh daemon gets the same bytes
  // the first daemon served — the stream has no server-side state to lose.
  const std::string algo = GetParam();
  const std::uint64_t offset = 12289;  // straddles block boundaries
  const std::uint32_t n = 24571;

  std::vector<std::uint8_t> first, second;
  for (const std::size_t workers : {2u, 5u}) {
    nt::Server server({.workers = workers});
    server.start();
    nt::Client client("127.0.0.1", server.port());
    auto bytes = client.generate(algo, kSeed, offset, n);
    (first.empty() ? first : second) = std::move(bytes);
    server.stop();
  }
  EXPECT_EQ(first, second) << algo;
}

INSTANTIATE_TEST_SUITE_P(AllBitslicedCiphers, RestartDeterminism,
                         ::testing::ValuesIn(std::vector<std::string>(
                             std::begin(kCiphers), std::end(kCiphers))),
                         [](const auto& pinfo) {
                           std::string s = pinfo.param;
                           for (char& c : s)
                             if (c == '-') c = '_';
                           return s;
                         });
