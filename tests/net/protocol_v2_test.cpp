// protocol_v2_test.cpp — the v2 wire surface: hello versioning, StreamRef-
// addressed kGenerate2, server-minted checkpoints, and kResume — plus the
// fold law that makes v2 safe to ship: a v2 request is served byte-
// identically to the v1 request at the derived seed, so v1 and v2 clients
// can interleave on one connection (and one server) without either noticing
// the other exists.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "net/client.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"
#include "stream/checkpoint.hpp"
#include "stream/stream_ref.hpp"

namespace co = bsrng::core;
namespace nt = bsrng::net;
namespace st = bsrng::stream;

namespace {

constexpr std::uint64_t kSeed = 0xB5126'2026ull;
constexpr st::StreamRef kRef{4, 2, 9};

std::vector<std::uint8_t> reference_bytes(const std::string& algo,
                                          std::uint64_t seed,
                                          std::uint64_t offset,
                                          std::size_t n) {
  std::vector<std::uint8_t> all(offset + n);
  co::make_generator(algo, seed)->fill(all);
  return {all.begin() + static_cast<std::ptrdiff_t>(offset), all.end()};
}

}  // namespace

// --- pure codec -----------------------------------------------------------

TEST(ProtocolV2, Generate2RoundTripsThroughTheCodec) {
  const nt::GenerateRequest req{"mickey-bs64", 42, 4096, 512, {1, 2, 3}};
  const auto frame = nt::encode_generate2(req);
  // Body: type + alen + name + seed + ref(24) + offset + nbytes.
  ASSERT_EQ(frame.size(), 4u + 2 + 11 + 8 + 24 + 8 + 4);
  const auto dec = nt::decode_request(
      std::span(frame.data() + 4, frame.size() - 4));
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(dec->type, nt::kGenerate2);
  EXPECT_EQ(dec->generate.algorithm, "mickey-bs64");
  EXPECT_EQ(dec->generate.seed, 42u);
  EXPECT_EQ(dec->generate.ref, (st::StreamRef{1, 2, 3}));
  EXPECT_EQ(dec->generate.offset, 4096u);
  EXPECT_EQ(dec->generate.nbytes, 512u);
  EXPECT_TRUE(nt::is_stream_request(*dec));
  // The derived seed the server folds to.
  EXPECT_EQ(dec->generate.effective_seed(),
            (st::StreamRef{1, 2, 3}).derive_seed(42));
}

TEST(ProtocolV2, HelloAndCheckpointFramesRoundTrip) {
  const auto hello = nt::encode_hello(7);
  const auto hdec = nt::decode_request(
      std::span(hello.data() + 4, hello.size() - 4));
  ASSERT_TRUE(hdec.has_value());
  EXPECT_EQ(hdec->type, nt::kHello);
  EXPECT_EQ(hdec->hello_version, 7u);
  EXPECT_FALSE(nt::is_stream_request(*hdec));

  const nt::GenerateRequest req{"grain-bs32", 5, 100, 0, {9, 0, 1}};
  const auto ck = nt::encode_checkpoint_request(req);
  const auto cdec =
      nt::decode_request(std::span(ck.data() + 4, ck.size() - 4));
  ASSERT_TRUE(cdec.has_value());
  EXPECT_EQ(cdec->type, nt::kCheckpoint);
  EXPECT_EQ(cdec->generate.algorithm, "grain-bs32");
  EXPECT_EQ(cdec->generate.ref, (st::StreamRef{9, 0, 1}));
  EXPECT_EQ(cdec->generate.offset, 100u);
  EXPECT_FALSE(nt::is_stream_request(*cdec));  // a position, not a span
}

TEST(ProtocolV2, ResumeDecodeValidatesTheBlobNotJustTheFrame) {
  const st::StreamCheckpoint ck{"trivium-bs64", 8, {1, 1, 1}, 2048};
  const auto blob = st::serialize_checkpoint(ck);
  const auto frame = nt::encode_resume(blob, 333);
  const auto dec = nt::decode_request(
      std::span(frame.data() + 4, frame.size() - 4));
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(dec->type, nt::kResume);
  EXPECT_TRUE(dec->checkpoint_ok);
  EXPECT_TRUE(nt::is_stream_request(*dec));
  EXPECT_EQ(dec->generate.algorithm, "trivium-bs64");
  EXPECT_EQ(dec->generate.offset, 2048u);
  EXPECT_EQ(dec->generate.nbytes, 333u);

  // A digest-tampered blob is a sound FRAME carrying a bad CHECKPOINT:
  // decode succeeds, checkpoint_ok stays false (-> kBadCheckpoint, not
  // kBadFrame — the connection must survive).
  auto bad = blob;
  bad.back() ^= 0x01;
  const auto bframe = nt::encode_resume(bad, 333);
  const auto bdec = nt::decode_request(
      std::span(bframe.data() + 4, bframe.size() - 4));
  ASSERT_TRUE(bdec.has_value());
  EXPECT_FALSE(bdec->checkpoint_ok);
  EXPECT_FALSE(nt::is_stream_request(*bdec));

  // Structural damage to the FRAME is still a bad frame.
  std::vector<std::uint8_t> trunc(frame.begin() + 4, frame.end() - 1);
  EXPECT_FALSE(nt::decode_request(trunc).has_value());
  EXPECT_THROW((void)nt::encode_resume({}, 1), std::invalid_argument);
}

// --- live server ----------------------------------------------------------

TEST(ProtocolV2, HelloNegotiatesAndRejectsOutOfRangeVersions) {
  nt::Server server({.workers = 1});
  server.start();
  nt::Client client("127.0.0.1", server.port());

  EXPECT_EQ(client.hello(), nt::kProtocolVersion);
  EXPECT_EQ(client.hello(1), nt::kProtocolVersion);  // v1 clients welcome

  // An out-of-range hello answers kBadVersion (payload: server version)
  // and leaves the connection usable.
  client.send_hello(99);
  const auto resp = client.read_response();
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, nt::Status::kBadVersion);
  ASSERT_EQ(resp->payload.size(), 4u);
  EXPECT_EQ(nt::read_u32le(resp->payload.data()), nt::kProtocolVersion);
  EXPECT_EQ(client.generate("mickey-bs64", 1, 0, 64).size(), 64u);
  server.stop();
}

TEST(ProtocolV2, Generate2ServesTheDerivedSeedStream) {
  // The fold law over the wire: kGenerate2 bytes == v1 bytes of the derived
  // seed, and the root ref == plain kGenerate, on the same server.
  nt::Server server({.workers = 3});
  server.start();
  nt::Client client("127.0.0.1", server.port());

  for (const std::string algo : {"aes-ctr-bs64", "mickey-bs32", "mt19937"}) {
    const std::uint64_t derived = kRef.derive_seed(kSeed);
    EXPECT_EQ(client.generate(algo, kSeed, kRef, 777, 4099),
              reference_bytes(algo, derived, 777, 4099))
        << algo;
    EXPECT_EQ(client.generate(algo, kSeed, kRef, 777, 4099),
              client.generate(algo, derived, 777, 4099))
        << algo << " v2 != v1-at-derived-seed";
    EXPECT_EQ(client.generate(algo, kSeed, st::StreamRef{}, 0, 512),
              client.generate(algo, kSeed, 0, 512))
        << algo << " root ref != v1";
  }
  server.stop();
}

TEST(ProtocolV2, MixedVersionClientsInterleaveOnOneConnection) {
  // Alternating v1 and v2 frames walking the SAME effective stream must
  // concatenate seamlessly — after the admission fold they are the same
  // request, so they even batch together.
  nt::Server server({.workers = 2});
  server.start();
  nt::Client client("127.0.0.1", server.port());

  const std::string algo = "chacha20-bs64";
  const st::StreamRef ref{6, 1, 0};
  const std::uint64_t derived = ref.derive_seed(kSeed);
  const std::size_t span = 2048, rounds = 8;
  for (std::size_t i = 0; i < rounds; ++i) {
    if (i % 2 == 0)
      client.send_generate(algo, kSeed, ref, i * span,
                           static_cast<std::uint32_t>(span));
    else
      client.send_generate(algo, derived, i * span,
                           static_cast<std::uint32_t>(span));
  }
  std::vector<std::uint8_t> got;
  for (std::size_t i = 0; i < rounds; ++i) {
    const auto resp = client.read_response();
    ASSERT_TRUE(resp.has_value()) << i;
    ASSERT_EQ(resp->status, nt::Status::kOk) << i;
    got.insert(got.end(), resp->payload.begin(), resp->payload.end());
  }
  EXPECT_EQ(got, reference_bytes(algo, derived, 0, rounds * span));
  server.stop();
}

TEST(ProtocolV2, ServerMintedCheckpointsMatchTheLocalCodec) {
  // kCheckpoint echoes the CLIENT's addressing (root seed + ref), not the
  // folded seed — the blob is the canonical serialize_checkpoint output.
  nt::Server server({.workers = 2});
  server.start();
  nt::Client client("127.0.0.1", server.port());

  const auto blob = client.checkpoint("grain-bs64", kSeed, kRef, 12345);
  EXPECT_EQ(blob, st::serialize_checkpoint(
                      {"grain-bs64", kSeed, kRef, 12345}));
  const auto back = st::parse_checkpoint(blob);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->seed, kSeed);
  EXPECT_EQ(back->ref, kRef);
  EXPECT_EQ(back->offset, 12345u);
  server.stop();
}

TEST(ProtocolV2, ResumeServesTheCheckpointTailAndSurvivesTampering) {
  nt::Server server({.workers = 3});
  server.start();
  nt::Client client("127.0.0.1", server.port());

  const std::string algo = "trivium-bs64";
  const std::uint64_t off = 8191;
  const auto blob = client.checkpoint(algo, kSeed, kRef, off);
  EXPECT_EQ(client.resume(blob, 4096),
            reference_bytes(algo, kRef.derive_seed(kSeed), off, 4096));

  // Every single-byte tamper answers kBadCheckpoint; the connection keeps
  // serving afterwards.
  for (const std::size_t i : {std::size_t{0}, blob.size() / 2,
                              blob.size() - 1}) {
    auto bad = blob;
    bad[i] ^= 0x01;
    client.send_resume(bad, 64);
    const auto resp = client.read_response();
    ASSERT_TRUE(resp.has_value()) << "tamper at " << i;
    EXPECT_EQ(resp->status, nt::Status::kBadCheckpoint) << "tamper at " << i;
  }
  EXPECT_EQ(client.resume(blob, 128),
            reference_bytes(algo, kRef.derive_seed(kSeed), off, 128));
  server.stop();
}

TEST(ProtocolV2, CheckpointResumesByteExactAcrossServerRestart) {
  // The O(1)-checkpoint restart law: a blob minted by one daemon resumes
  // byte-exactly against a NEW daemon with a different worker count.  The
  // blob is the only thing that survives the kill.
  const std::string algo = "mickey-bs64";
  const std::size_t head = 24576, tail = 8192;
  const std::uint64_t derived = kRef.derive_seed(kSeed);
  const auto reference = reference_bytes(algo, derived, 0, head + tail);

  std::vector<std::uint8_t> blob;
  std::vector<std::uint8_t> got;
  {
    nt::Server server({.workers = 3});
    server.start();
    nt::Client client("127.0.0.1", server.port());
    got = client.generate(algo, kSeed, kRef, 0,
                          static_cast<std::uint32_t>(head));
    blob = client.checkpoint(algo, kSeed, kRef, head);
    server.stop();  // full kill; the checkpoint outlives everything
  }
  {
    nt::Server server({.workers = 1});
    server.start();
    nt::Client client("127.0.0.1", server.port());
    const auto rest = client.resume(blob, static_cast<std::uint32_t>(tail));
    got.insert(got.end(), rest.begin(), rest.end());
    server.stop();
  }
  EXPECT_EQ(got, reference) << "checkpoint diverged across restart";
}
