// soak_test.cpp — a scaled-down in-tree soak: many concurrent connections
// hammering one daemon with mixed algorithms and span sizes, every response
// verified against the canonical stream, and the server required to end
// with zero live connections or sessions.  The full ≥1000-connection soak
// runs in CI via bsrng_loadgen (tools/bsrng_loadgen.cpp); this version is
// small enough for every ctest run — including the TSan leg, which shrinks
// it further via BSRNG_NET_SOAK_CONNS / BSRNG_NET_SOAK_REQS.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "core/registry.hpp"
#include "net/client.hpp"
#include "net/server.hpp"

namespace co = bsrng::core;
namespace nt = bsrng::net;

namespace {

std::size_t env_or(const char* name, std::size_t fallback) {
  if (const char* env = std::getenv(name)) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return fallback;
}

}  // namespace

TEST(Soak, ConcurrentMixedTenantsVerifyAndDrainClean) {
  const std::size_t kConns = env_or("BSRNG_NET_SOAK_CONNS", 24);
  const std::size_t kReqs = env_or("BSRNG_NET_SOAK_REQS", 40);
  const char* const kAlgos[] = {"mickey-bs64",  "grain-bs64",
                                "trivium-bs64", "aes-ctr-bs64",
                                "a51-bs64",     "chacha20-bs64"};
  const std::size_t kSpans[] = {512, 4096, 64, 1024, 8191};

  nt::Server server({.workers = 4});
  server.start();
  const std::uint16_t port = server.port();

  std::atomic<std::size_t> mismatches{0};
  std::atomic<std::size_t> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kConns);
  for (std::size_t c = 0; c < kConns; ++c) {
    threads.emplace_back([&, c] {
      try {
        nt::Client client("127.0.0.1", port);
        // Each connection is its own tenant: a distinct (algorithm, seed)
        // pair, consumed sequentially with occasional backward re-reads.
        const std::string algo = kAlgos[c % std::size(kAlgos)];
        const std::uint64_t seed = 1000 + c;
        std::vector<std::uint8_t> expected((kReqs + 1) * 8192);
        co::make_generator(algo, seed)->fill(expected);

        std::uint64_t cursor = 0;
        for (std::size_t r = 0; r < kReqs; ++r) {
          std::uint64_t offset = cursor;
          std::size_t n = kSpans[(c + r) % std::size(kSpans)];
          if (r % 7 == 6 && cursor > 0) offset = cursor / 2;  // re-read
          const auto got = client.generate(
              algo, seed, offset, static_cast<std::uint32_t>(n));
          if (!std::equal(got.begin(), got.end(),
                          expected.begin() +
                              static_cast<std::ptrdiff_t>(offset)))
            mismatches.fetch_add(1);
          if (offset == cursor) cursor += n;
        }
      } catch (const std::exception&) {
        failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(failures.load(), 0u);

  const auto before = server.stats();
  EXPECT_EQ(before.accepted, kConns);
  EXPECT_EQ(before.bad_frames, 0u);
  EXPECT_GE(before.requests, kConns * kReqs);

  // Every client has disconnected; the server must drain to zero live
  // connections and sessions (leak check).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    const auto s = server.stats();
    if (s.connections == 0 && s.sessions == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const auto after = server.stats();
  EXPECT_EQ(after.connections, 0u);
  EXPECT_EQ(after.sessions, 0u);
  server.stop();
}
