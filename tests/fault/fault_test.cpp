// fault_test.cpp — the deterministic fault-injection framework.
//
// Pins the three contracts src/fault sells:
//   1. The schedule is a pure function of (seed, point name, hit index) —
//      re-derived here against the documented splitmix64 decision function,
//      so a schedule change is a deliberate, visible break.
//   2. Disarmed points are inert and do not advance the schedule; re-arm
//      resumes, reset_counts() replays exactly.
//   3. The compiled-in hooks actually disturb their layer (engine alloc,
//      pool task, gpusim launch) and the system degrades as documented —
//      and once disarmed, output is byte-identical to a never-faulted run,
//      because every retry path re-asks for the same positional span.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <new>
#include <string>
#include <vector>

#include "core/keyschedule.hpp"
#include "core/multi_device.hpp"
#include "core/registry.hpp"
#include "core/stream_engine.hpp"
#include "fault/fault.hpp"
#include "telemetry/metrics.hpp"

namespace co = bsrng::core;
namespace fa = bsrng::fault;
namespace tel = bsrng::telemetry;

namespace {

// Every test leaves the process registry disarmed and clean; telemetry
// enablement is restored too so test order never matters.
class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override { was_enabled_ = tel::metrics().enabled(); }
  void TearDown() override {
    fa::faults().clear();
    tel::metrics().set_enabled(was_enabled_);
  }
  bool was_enabled_ = false;
};

std::vector<bool> pattern(fa::FaultPoint& p, std::size_t n) {
  std::vector<bool> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(p.fire());
  return out;
}

}  // namespace

TEST_F(FaultTest, DecisionFunctionIsPinnedToTheSplitmixSchedule) {
  fa::FaultRegistry reg;
  const std::uint64_t seed = 0xDEC0DEull;
  reg.arm(seed, 0.5);  // 0.5 is exactly 2^31 in Q0.32
  fa::FaultPoint& p = reg.point("pin.me");
  const std::uint64_t salt = seed ^ fa::fnv1a64("pin.me");
  std::size_t fired = 0;
  for (std::uint64_t n = 0; n < 256; ++n) {
    co::keyschedule::SeedStream s(salt);
    s.skip_words(n);
    const bool expect = (s.next_word() >> 32) < (1ull << 31);
    EXPECT_EQ(p.fire(), expect) << "hit " << n;
    fired += expect ? 1 : 0;
  }
  EXPECT_EQ(p.fired(), fired);
  EXPECT_EQ(p.hits(), 256u);
  // Rate 0.5 over 256 draws of a decent PRNG is nowhere near degenerate.
  EXPECT_GT(fired, 64u);
  EXPECT_LT(fired, 192u);
}

TEST_F(FaultTest, ScheduleIsIdenticalAcrossRegistriesAndUnaffectedByOtherPoints) {
  fa::FaultRegistry a;
  fa::FaultRegistry b;
  a.arm(42, 0.25);
  b.arm(42, 0.25);
  fa::FaultPoint& pa = a.point("layer.x");
  fa::FaultPoint& pb = b.point("layer.x");
  fa::FaultPoint& noise = b.point("layer.y");
  // Interleave draws at another point in b only: per-point hit indices mean
  // layer.y's traffic cannot perturb layer.x's schedule.
  std::vector<bool> seq_a = pattern(pa, 128);
  std::vector<bool> seq_b;
  for (std::size_t i = 0; i < 128; ++i) {
    (void)noise.fire();
    seq_b.push_back(pb.fire());
    (void)noise.fire();
  }
  EXPECT_EQ(seq_a, seq_b);

  // A different seed is a different schedule (with overwhelming odds over
  // 128 draws at rate 0.25).
  fa::FaultRegistry c;
  c.arm(43, 0.25);
  EXPECT_NE(seq_a, pattern(c.point("layer.x"), 128));
}

TEST_F(FaultTest, DisarmedPointsAreInertAndDoNotAdvanceTheSchedule) {
  fa::FaultRegistry reg;
  fa::FaultPoint& p = reg.point("quiet");
  for (int i = 0; i < 64; ++i) EXPECT_FALSE(p.fire());
  EXPECT_EQ(p.hits(), 0u) << "disarmed arrivals must not advance the schedule";

  reg.arm(7, 1.0);
  EXPECT_TRUE(p.fire());
  reg.disarm();
  EXPECT_FALSE(p.fire());
  EXPECT_EQ(p.hits(), 1u);

  // Re-arm resumes at hit 1 (positions 1..100); reset_counts rewinds so the
  // replay from position 0 reproduces those decisions one slot later.
  reg.arm(7, 0.375);
  const std::vector<bool> resumed = pattern(p, 100);
  reg.reset_counts();
  EXPECT_EQ(p.hits(), 0u);
  const std::vector<bool> replay = pattern(p, 101);
  EXPECT_EQ(std::vector<bool>(replay.begin() + 1, replay.end()), resumed);
  // And the replay matches the documented derivation from position 0.
  co::keyschedule::SeedStream probe(7 ^ fa::fnv1a64("quiet"));
  const std::uint64_t q =
      static_cast<std::uint64_t>(std::ldexp(0.375, 32));
  for (std::size_t i = 0; i < replay.size(); ++i)
    EXPECT_EQ(replay[i], (probe.next_word() >> 32) < q) << "hit " << i;
}

TEST_F(FaultTest, PerPointOverridesBeatTheDefaultRate) {
  fa::FaultRegistry reg;
  reg.arm(11, 0.0);
  reg.arm_point("always", 1.0);
  fa::FaultPoint& on = reg.point("always");
  fa::FaultPoint& off = reg.point("never");
  for (int i = 0; i < 32; ++i) {
    EXPECT_TRUE(on.fire());
    EXPECT_FALSE(off.fire());
  }
  EXPECT_EQ(reg.total_fired(), 32u);

  // snapshot() reports both points, name-sorted, with their rates.
  const auto stats = reg.snapshot();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].name, "always");
  EXPECT_EQ(stats[0].fired, 32u);
  EXPECT_EQ(stats[1].name, "never");
  EXPECT_EQ(stats[1].fired, 0u);
}

TEST_F(FaultTest, MaybeThrowCarriesThePointName) {
  fa::FaultRegistry reg;
  reg.arm(1, 1.0);
  try {
    reg.point("engine.alloc_fail").maybe_throw();
    FAIL() << "armed at rate 1.0, must throw";
  } catch (const fa::InjectedFault& e) {
    EXPECT_EQ(e.point(), "engine.alloc_fail");
    EXPECT_NE(std::string(e.what()).find("engine.alloc_fail"),
              std::string::npos);
  }
}

TEST_F(FaultTest, EngineAllocFaultThrowsThenRecoversByteExact) {
  const std::string algo = "chacha20-bs64";
  const std::size_t n = (1u << 18) + 13;
  std::vector<std::uint8_t> reference(n);
  co::make_generator(algo, 99)->fill(reference);

  fa::faults().arm(0xA110C, 0.0);
  fa::faults().arm_point("engine.alloc_fail", 1.0);
  co::StreamEngine engine({.workers = 2});
  std::vector<std::uint8_t> out(n, 0x5A);
  EXPECT_THROW((void)engine.generate({algo, 99}, out), std::bad_alloc);

  // The fault fires before any output byte, so the retry-at-same-offset
  // contract is trivial: disarm and the very same engine produces the
  // canonical stream.
  fa::faults().disarm();
  (void)engine.generate({algo, 99}, out);
  EXPECT_TRUE(std::equal(out.begin(), out.end(), reference.begin()));
}

TEST_F(FaultTest, PoolTaskFaultPropagatesThenRecoversByteExact) {
  const std::string algo = "aes-ctr-bs64";
  const std::size_t n = (1u << 19) + 7;
  std::vector<std::uint8_t> reference(n);
  co::make_generator(algo, 5)->fill(reference);

  fa::faults().arm(0xB00, 0.0);
  fa::faults().arm_point("pool.task_throw", 1.0);
  co::StreamEngine engine({.workers = 3});
  std::vector<std::uint8_t> out(n, 0xEE);
  EXPECT_THROW((void)engine.generate({algo, 5}, out), fa::InjectedFault);

  fa::faults().disarm();
  (void)engine.generate({algo, 5}, out);
  EXPECT_TRUE(std::equal(out.begin(), out.end(), reference.begin()));
}

TEST_F(FaultTest, GpusimStagingIsByteExactWhenHealthy) {
  // The gpusim-staged multi-device path must reproduce the canonical
  // stream for every partition kind before the fault story means anything.
  for (const char* algo : {"aes-ctr-bs64", "mickey-bs64", "trivium-bs64"}) {
    const std::size_t n = 8192 + 5;
    std::vector<std::uint8_t> reference(n);
    co::make_generator(algo, 21)->fill(reference);
    std::vector<std::uint8_t> out(n, 0);
    const auto rep = co::multi_device_generate(
        algo, 21, 3, out, co::MultiDeviceOptions{.use_gpusim = true});
    EXPECT_TRUE(std::equal(out.begin(), out.end(), reference.begin()))
        << algo;
    EXPECT_FALSE(rep.degraded_to_host) << algo;
    EXPECT_EQ(rep.device_fallbacks, 0u) << algo;
  }
}

TEST_F(FaultTest, DeviceFaultDegradesToHostByteExactWithTelemetry) {
  tel::metrics().set_enabled(true);
  tel::metrics().reset();
  const std::string algo = "grain-bs64";
  const std::size_t n = 16384 + 9;
  std::vector<std::uint8_t> reference(n);
  co::make_generator(algo, 77)->fill(reference);

  fa::faults().arm(0xFA11, 0.0);
  fa::faults().arm_point("gpusim.launch_fault", 1.0);
  std::vector<std::uint8_t> out(n, 0x11);
  const auto rep = co::multi_device_generate(
      algo, 77, 4, out, co::MultiDeviceOptions{.use_gpusim = true});

  // Every device launch faulted; the ladder lands on the host path and the
  // output is still the canonical stream, byte for byte.
  EXPECT_TRUE(rep.degraded_to_host);
  EXPECT_EQ(rep.device_fallbacks, 4u);
  EXPECT_TRUE(std::equal(out.begin(), out.end(), reference.begin()));

  const auto snap = tel::MetricsSnapshot::from_json(tel::metrics().to_json());
  ASSERT_TRUE(snap.has_value());
  const tel::MetricValue* m = snap->find("multi_device.device_fallbacks");
  ASSERT_NE(m, nullptr);
  EXPECT_GE(m->value, 4.0);
}

TEST_F(FaultTest, ProcessRegistryIsSharedAndClears) {
  fa::FaultRegistry& reg = fa::faults();
  EXPECT_FALSE(reg.armed());
  reg.arm(3, 1.0);
  EXPECT_TRUE(reg.armed());
  EXPECT_EQ(reg.seed(), 3u);
  EXPECT_TRUE(reg.point("anywhere").fire());
  reg.clear();
  EXPECT_FALSE(reg.armed());
  EXPECT_EQ(reg.point("anywhere").hits(), 0u);
  EXPECT_EQ(reg.total_fired(), 0u);
}
