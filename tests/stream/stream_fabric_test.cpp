// stream_fabric_test.cpp — the substream-tree derivation and checkpoint
// codec laws (src/stream).
//
// The fabric's contract has three parts, each pinned here:
//   identity     StreamRef{0,0,0} derives the root seed unchanged (v1
//                compatibility: the historical stream IS the root node).
//   injectivity  distinct refs derive distinct seeds (collision property
//                test over the splitmix64 tree), so tenants/streams/shards
//                have provably disjoint keyschedules.
//   O(1) seek    derive_child(parent, tag, i) is draw #i of the splitmix
//                stream seeded at parent^tag — closed form == iterated form.
//
// The checkpoint codec is strict by design: "it parsed" must imply "it is
// safe to resume", so every structural or digest tamper must fail parse.
#include "stream/checkpoint.hpp"
#include "stream/stream_ref.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "core/keyschedule.hpp"
#include "lfsr/bitsliced_lfsr.hpp"

namespace st = bsrng::stream;

TEST(StreamRef, RootRefIsIdentity) {
  for (const std::uint64_t seed : {0ull, 1ull, 42ull, 0xDEADBEEFCAFEBABEull,
                                   ~0ull}) {
    EXPECT_EQ(st::StreamRef{}.derive_seed(seed), seed);
    EXPECT_EQ(st::derive_child(seed, st::kTenantTag, 0), seed);
    EXPECT_EQ(st::derive_child(seed, st::kStreamTag, 0), seed);
    EXPECT_EQ(st::derive_child(seed, st::kShardTag, 0), seed);
  }
  EXPECT_TRUE(st::StreamRef{}.is_root());
  EXPECT_FALSE((st::StreamRef{1, 0, 0}).is_root());
  EXPECT_FALSE((st::StreamRef{0, 0, 9}).is_root());
}

TEST(StreamRef, PinnedDerivationValues) {
  // Golden values: any change to the tags, the gamma, or the splitmix
  // finalizer breaks every committed checkpoint and every v2 substream.
  EXPECT_EQ(st::derive_child(42, st::kTenantTag, 1), 0x5a62deccfe49c43bull);
  EXPECT_EQ(st::derive_child(42, st::kStreamTag, 1), 0xe816c0ef88ec839cull);
  EXPECT_EQ(st::derive_child(42, st::kShardTag, 7), 0xb00ac62ed2a95fb7ull);
  EXPECT_EQ((st::StreamRef{1, 2, 3}).derive_seed(42),
            0xdd62768f3d498bafull);
}

TEST(StreamRef, ChildIsTheIndexedSplitmixDraw) {
  // Closed form == iterated form: child #i is the i-th draw of the
  // splitmix64 stream seeded at parent^tag, reachable without clocking.
  for (const std::uint64_t parent : {0ull, 42ull, 0x9E3779B97F4A7C15ull}) {
    for (const std::uint64_t tag :
         {st::kTenantTag, st::kStreamTag, st::kShardTag}) {
      std::uint64_t x = parent ^ tag;
      for (std::uint64_t i = 1; i <= 64; ++i) {
        const std::uint64_t drawn = bsrng::lfsr::splitmix64(x);
        EXPECT_EQ(st::derive_child(parent, tag, i), drawn)
            << "parent " << parent << " tag " << tag << " index " << i;
      }
    }
  }
}

TEST(StreamRef, DisjointKeyschedulesAcrossTheTree) {
  // Collision property test: every (tenant, stream, shard) in a 12^3 cube
  // (plus the root) derives a distinct seed, for two different root seeds.
  // Per-level derivation is injective by construction (odd-gamma affine
  // bijection composed with the bijective splitmix finalizer); this checks
  // the composed tree, where distinct-level tags must also not collude.
  for (const std::uint64_t root : {7ull, 0xFEEDFACECAFEF00Dull}) {
    std::set<std::uint64_t> seen;
    std::size_t total = 0;
    for (std::uint64_t t = 0; t < 12; ++t)
      for (std::uint64_t s = 0; s < 12; ++s)
        for (std::uint64_t d = 0; d < 12; ++d) {
          seen.insert(st::StreamRef{t, s, d}.derive_seed(root));
          ++total;
        }
    EXPECT_EQ(seen.size(), total) << "collision under root " << root;
  }
}

TEST(StreamRef, LevelsAreOrderSensitive) {
  // tenant=a,stream=b must differ from tenant=b,stream=a: the level tags
  // keep the tree from being a flat commutative hash.
  const std::uint64_t root = 1234;
  EXPECT_NE((st::StreamRef{1, 2, 0}).derive_seed(root),
            (st::StreamRef{2, 1, 0}).derive_seed(root));
  EXPECT_NE((st::StreamRef{1, 0, 2}).derive_seed(root),
            (st::StreamRef{2, 0, 1}).derive_seed(root));
  EXPECT_NE((st::StreamRef{0, 1, 0}).derive_seed(root),
            (st::StreamRef{0, 0, 1}).derive_seed(root));
}

TEST(Checkpoint, RoundTripsExactly) {
  const std::vector<st::StreamCheckpoint> cases = {
      {"mickey-bs64", 42, {1, 2, 3}, 4096},
      {"aes-ctr-bs512", 0, {}, 0},
      {"trivium-bs64", ~0ull, {~0ull, ~0ull, ~0ull}, ~0ull},
      {"x", 9, {0, 0, 5}, 123456789},
  };
  for (const st::StreamCheckpoint& ck : cases) {
    const std::vector<std::uint8_t> blob = st::serialize_checkpoint(ck);
    EXPECT_EQ(blob.size(), st::kCheckpointFixedBytes + ck.algorithm.size());
    const auto back = st::parse_checkpoint(blob);
    ASSERT_TRUE(back.has_value()) << ck.algorithm;
    EXPECT_EQ(*back, ck);
  }
}

TEST(Checkpoint, PinnedWireFormat) {
  const st::StreamCheckpoint ck{"mickey-bs64", 42, {1, 2, 3}, 4096};
  const std::vector<std::uint8_t> blob = st::serialize_checkpoint(ck);
  ASSERT_EQ(blob.size(), 68u);  // 57 fixed + 11-byte algorithm name
  // Magic "BSCK", version 1 (u32le), algo length, name prefix.
  EXPECT_EQ(blob[0], 'B');
  EXPECT_EQ(blob[1], 'S');
  EXPECT_EQ(blob[2], 'C');
  EXPECT_EQ(blob[3], 'K');
  EXPECT_EQ(blob[4], 1u);
  EXPECT_EQ(blob[5], 0u);
  EXPECT_EQ(blob[6], 0u);
  EXPECT_EQ(blob[7], 0u);
  EXPECT_EQ(blob[8], 11u);
  EXPECT_EQ(blob[9], 'm');
  EXPECT_EQ(st::checkpoint_digest(ck), 0x28d53b03e07ef985ull);
}

TEST(Checkpoint, EveryTamperedByteFailsParse) {
  const st::StreamCheckpoint ck{"grain-bs64", 77, {4, 5, 6}, 1u << 20};
  const std::vector<std::uint8_t> blob = st::serialize_checkpoint(ck);
  ASSERT_TRUE(st::parse_checkpoint(blob).has_value());
  for (std::size_t i = 0; i < blob.size(); ++i) {
    std::vector<std::uint8_t> bad = blob;
    bad[i] ^= 0x01;
    const auto parsed = st::parse_checkpoint(bad);
    // A flipped byte either breaks the structure or desyncs the schedule
    // digest; both MUST fail — except a flip inside the algorithm name
    // that happens to name another registered spelling, which the digest
    // still catches because the name is part of the digested prefix.
    EXPECT_FALSE(parsed.has_value()) << "byte " << i << " tamper survived";
  }
}

TEST(Checkpoint, RejectsStructuralDamage) {
  const st::StreamCheckpoint ck{"mickey-bs64", 1, {}, 0};
  const std::vector<std::uint8_t> blob = st::serialize_checkpoint(ck);
  // Truncations at every length.
  for (std::size_t n = 0; n < blob.size(); ++n)
    EXPECT_FALSE(
        st::parse_checkpoint(std::span(blob.data(), n)).has_value())
        << "truncated to " << n;
  // Trailing garbage.
  std::vector<std::uint8_t> longer = blob;
  longer.push_back(0);
  EXPECT_FALSE(st::parse_checkpoint(longer).has_value());
  // Unserializable algorithm names throw instead of emitting bad blobs.
  EXPECT_THROW(st::serialize_checkpoint({"", 1, {}, 0}),
               std::invalid_argument);
  EXPECT_THROW(st::serialize_checkpoint({std::string(256, 'a'), 1, {}, 0}),
               std::invalid_argument);
}

TEST(Checkpoint, DigestCoversTheDerivedSeed) {
  // Two checkpoints that agree on every serialized field but disagree on
  // what the ref derives to cannot exist (ref is serialized), but the
  // digest ALSO folds in the derived seed, so it fingerprints the
  // derivation schedule itself: if the tree derivation ever changed, old
  // blobs would fail digest instead of resuming the wrong substream.
  const st::StreamCheckpoint a{"mickey-bs64", 5, {1, 0, 0}, 64};
  const st::StreamCheckpoint b{"mickey-bs64", 5, {2, 0, 0}, 64};
  EXPECT_NE(st::checkpoint_digest(a), st::checkpoint_digest(b));
  // And the digest is a pure function of the checkpoint (stable).
  EXPECT_EQ(st::checkpoint_digest(a), st::checkpoint_digest(a));
}
